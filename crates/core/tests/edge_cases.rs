//! Edge-case and failure-injection tests for the compression pipeline:
//! inputs a well-behaved generator never produces but a real capture
//! will.

use flowzip_core::{CompressedTrace, Compressor, DecompressParams, Decompressor, Params};
use flowzip_trace::prelude::*;

fn tuple(client_port: u16, server_last_octet: u8) -> FiveTuple {
    FiveTuple::tcp(
        Ipv4Addr::new(10, 0, 0, 1),
        client_port,
        Ipv4Addr::new(192, 168, 1, server_last_octet),
        80,
    )
}

fn pkt(t: FiveTuple, us: u64, flags: TcpFlags, len: u16) -> PacketRecord {
    PacketRecord::builder()
        .tuple(t)
        .timestamp(Timestamp::from_micros(us))
        .flags(flags)
        .payload_len(len)
        .build()
}

#[test]
fn single_packet_flow_survives_the_pipeline() {
    // A lone SYN (scan traffic): 1-packet flow, below the paper's 2-packet
    // short-flow minimum, must still be stored and restored.
    let trace = Trace::from_packets(vec![pkt(tuple(1024, 1), 10, TcpFlags::SYN, 0)]);
    let (archive, report) = Compressor::new(Params::paper()).compress(&trace);
    assert_eq!(report.flows, 1);
    assert_eq!(report.short_flows, 1);
    let out = Decompressor::default().decompress(&archive);
    assert_eq!(out.len(), 1);
    assert!(out.packets()[0].flags().is_syn_only());
}

#[test]
fn flow_without_termination_is_flushed_at_eof() {
    // Half-open connection: no FIN/RST ever.
    let t = tuple(2000, 2);
    let trace = Trace::from_packets(vec![
        pkt(t, 0, TcpFlags::SYN, 0),
        pkt(t.reversed(), 100, TcpFlags::SYN | TcpFlags::ACK, 0),
        pkt(t, 200, TcpFlags::ACK, 0),
    ]);
    let (archive, report) = Compressor::new(Params::paper()).compress(&trace);
    assert_eq!(report.flows, 1);
    assert_eq!(archive.packet_count(), 3);
}

#[test]
fn simultaneous_close_is_one_flow() {
    // Both sides FIN back-to-back, then the final ack.
    let t = tuple(2100, 3);
    let trace = Trace::from_packets(vec![
        pkt(t, 0, TcpFlags::SYN, 0),
        pkt(t.reversed(), 10, TcpFlags::SYN | TcpFlags::ACK, 0),
        pkt(t, 20, TcpFlags::FIN | TcpFlags::ACK, 0),
        pkt(t.reversed(), 30, TcpFlags::FIN | TcpFlags::ACK, 0),
        pkt(t, 40, TcpFlags::ACK, 0),
    ]);
    let (_, report) = Compressor::new(Params::paper()).compress(&trace);
    assert_eq!(
        report.flows, 1,
        "simultaneous close must not split the flow"
    );
    assert_eq!(report.packets, 5);
}

#[test]
fn port_reuse_after_close_starts_a_new_flow() {
    // Same 5-tuple reused after a RST: the compressor finalized the first
    // conversation, so the reuse opens a second flow.
    let t = tuple(2200, 4);
    let trace = Trace::from_packets(vec![
        pkt(t, 0, TcpFlags::SYN, 0),
        pkt(t, 10, TcpFlags::RST, 0),
        pkt(t, 1_000_000, TcpFlags::SYN, 0),
        pkt(t, 1_000_010, TcpFlags::RST, 0),
    ]);
    let (_, report) = Compressor::new(Params::paper()).compress(&trace);
    assert_eq!(report.flows, 2);
}

#[test]
fn exactly_fifty_packets_is_short_fifty_one_is_long() {
    let build = |n: u64, port: u16| -> Trace {
        let t = tuple(port, 5);
        let mut pkts = vec![pkt(t, 0, TcpFlags::SYN, 0)];
        for i in 1..n {
            pkts.push(pkt(t.reversed(), i * 10, TcpFlags::ACK, 100));
        }
        Trace::from_packets(pkts)
    };
    let (_, r50) = Compressor::new(Params::paper()).compress(&build(50, 3000));
    assert_eq!(r50.short_flows, 1);
    assert_eq!(r50.long_flows, 0);
    let (_, r51) = Compressor::new(Params::paper()).compress(&build(51, 3001));
    assert_eq!(r51.short_flows, 0);
    assert_eq!(r51.long_flows, 1);
}

#[test]
fn zero_rtt_flow_gets_default_rtt_on_decompression() {
    // Responder never speaks: archive stores RTT 0; the decompressor must
    // substitute its default instead of emitting zero gaps.
    let t = tuple(2300, 6);
    let trace = Trace::from_packets(vec![
        pkt(t, 0, TcpFlags::SYN, 0),
        pkt(t, 500_000, TcpFlags::SYN, 0), // retransmit
        pkt(t, 1_500_000, TcpFlags::RST, 0),
    ]);
    let (archive, _) = Compressor::new(Params::paper()).compress(&trace);
    let params = DecompressParams {
        default_rtt: Duration::from_millis(250),
        ..DecompressParams::default()
    };
    let out = Decompressor::new(params).decompress(&archive);
    assert_eq!(out.len(), 3);
    // The synthesized span reflects the default RTT, not zero.
    assert!(out.duration() >= Duration::from_micros(100));
}

#[test]
fn identical_timestamps_are_preserved_in_order() {
    // Burst captured in the same microsecond.
    let t = tuple(2400, 7);
    let trace = Trace::from_packets(vec![
        pkt(t, 100, TcpFlags::SYN, 0),
        pkt(t.reversed(), 100, TcpFlags::SYN | TcpFlags::ACK, 0),
        pkt(t, 100, TcpFlags::RST, 0),
    ]);
    let (archive, report) = Compressor::new(Params::paper()).compress(&trace);
    assert_eq!(report.flows, 1);
    assert_eq!(archive.packet_count(), 3);
}

#[test]
fn very_large_trace_of_identical_flows_uses_one_template() {
    let mut pkts = Vec::new();
    for f in 0..500u64 {
        let t = tuple(3000 + f as u16, 9);
        let base = f * 1_000_000;
        pkts.push(pkt(t, base, TcpFlags::SYN, 0));
        pkts.push(pkt(
            t.reversed(),
            base + 100,
            TcpFlags::SYN | TcpFlags::ACK,
            0,
        ));
        pkts.push(pkt(t, base + 200, TcpFlags::RST, 0));
    }
    let trace = Trace::from_packets(pkts);
    let (archive, report) = Compressor::new(Params::paper()).compress(&trace);
    assert_eq!(report.flows, 500);
    assert_eq!(report.clusters, 1, "identical flows share one cluster");
    assert_eq!(archive.short_templates.len(), 1);
    // time-seq dominates the archive; templates are constant-size.
    let (_, sizes) = archive.encode();
    assert!(sizes.time_seq > sizes.short_templates * 10);
}

#[test]
fn udp_and_other_protocols_still_flow_through() {
    // The paper is TCP/Web-scoped, but a capture may carry other
    // protocols; they must not crash the pipeline (they become flows with
    // flag class of their raw byte, typically ACK-class).
    let mut t = tuple(2500, 8);
    t.protocol = Protocol::UDP;
    let trace = Trace::from_packets(vec![
        pkt(t, 0, TcpFlags::EMPTY, 100),
        pkt(t, 10, TcpFlags::EMPTY, 100),
    ]);
    let (archive, report) = Compressor::new(Params::paper()).compress(&trace);
    assert_eq!(report.flows, 1);
    assert_eq!(archive.packet_count(), 2);
    let out = Decompressor::default().decompress(&archive);
    assert_eq!(out.len(), 2);
}

#[test]
fn corrupted_archive_bytes_never_panic() {
    let t = tuple(2600, 10);
    let trace = Trace::from_packets(vec![
        pkt(t, 0, TcpFlags::SYN, 0),
        pkt(t, 10, TcpFlags::RST, 0),
    ]);
    let (archive, _) = Compressor::new(Params::paper()).compress(&trace);
    let bytes = archive.to_bytes();
    // Flip every byte position one at a time: parsing must either fail
    // cleanly or produce a *valid* (possibly different) archive.
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0xA5;
        if let Ok(parsed) = CompressedTrace::from_bytes(&bad) {
            parsed
                .validate()
                .expect("from_bytes output always validates");
        }
    }
}

#[test]
fn decompressor_weight_mismatch_degrades_gracefully() {
    // Archive written with paper weights, read with wide weights: M
    // values no longer decompose; the decompressor falls back to its
    // default class rather than panicking.
    use flowzip_core::Weights;
    let t = tuple(2700, 11);
    let trace = Trace::from_packets(vec![
        pkt(t, 0, TcpFlags::SYN, 0),
        pkt(t.reversed(), 10, TcpFlags::SYN | TcpFlags::ACK, 0),
        pkt(t, 20, TcpFlags::RST, 0),
    ]);
    let (archive, _) = Compressor::new(Params::paper()).compress(&trace);
    let mismatched = Decompressor::new(DecompressParams {
        params: Params {
            weights: Weights {
                flags: 64,
                dependence: 8,
                size: 1,
            },
            ..Params::paper()
        },
        ..DecompressParams::default()
    });
    let out = mismatched.decompress(&archive);
    assert_eq!(out.len(), 3, "packet count survives even a weight mismatch");
}
