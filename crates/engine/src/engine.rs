//! The streaming engine: route → accumulate per shard → merge.
//!
//! Two routing topologies feed the shards (the
//! [`Routing`] knob; output is byte-identical
//! either way):
//!
//! ```text
//! routing=parallel (default) — hashing runs on R workers at once:
//!             ┌─ router 0 ─ partition ─┐          ┌─▶ shard 0 ─┐
//! BatchRead ──┼─ router 1 ─ partition ─┼─ ticket ─┼─▶ shard 1 ─┼─▶ merge
//!  (shared)   └─ router R ─ partition ─┘  order   └─▶ shard N ─┘
//!
//! routing=serial — the original dedicated router thread:
//!                    ┌── batch channel ──▶ shard 0: FlowAccumulator + TemplateStore ─┐
//! reader ──▶ router ─┼── batch channel ──▶ shard 1: FlowAccumulator + TemplateStore ─┼─▶ merge
//!  (any Iterator)    └── batch channel ──▶ shard N: FlowAccumulator + TemplateStore ─┘
//! ```
//!
//! Routing hashes each packet's canonical flow key so both directions
//! of a conversation land on the same shard; channels are bounded, so a
//! fast reader is back-pressured instead of buffering the trace. Workers
//! finalize flows online (FIN/RST, idle eviction, end of input) and
//! cluster them immediately; the merge step folds the per-shard stores
//! with [`TemplateStore::merge`](flowzip_core::TemplateStore::merge) and
//! re-sorts the flow records into one valid time-seq dataset.

use crate::builder::{CancelFlag, EngineBuilder, EngineConfig};
use crate::obs::{EngineObs, ShardObs};
use crate::report::EngineReport;
use crate::route::{shard_of, BatchPackets, IterBatches, Rechunker, RouteFabric, Routing};
use flowzip_core::datasets::CompressedTrace;
use flowzip_core::{
    assemble_sections, assemble_shards, ArchiveFormat, CompressionReport, FlowAccumulator,
    FlowAssembler, FlowTelemetry, Params, ShardSection,
};
use flowzip_io::{BatchRead, InputSource, WorkerPool};
use flowzip_trace::prelude::*;
use flowzip_trace::TraceError;
use std::sync::mpsc;
use std::time::Instant;

/// What a shard's assembler became when its channel closed: the raw
/// state (in-memory merge path) or an already-encoded container-v2
/// section (the shard did its own O(trace) serialization in parallel).
enum ShardResult {
    State(FlowAssembler),
    Section(ShardSection),
}

impl ShardResult {
    fn packets(&self) -> u64 {
        match self {
            ShardResult::State(asm) => asm.packets(),
            ShardResult::Section(s) => s.packets,
        }
    }
}

/// Everything a shard hands back when its channel closes.
struct ShardOutput {
    result: ShardResult,
    peak_active: u64,
    evicted: u64,
    /// Nanoseconds this shard's thread actually spent accumulating and
    /// encoding — measured only when metrics are enabled (0 otherwise),
    /// and the basis of the report's `stage_busy_secs`.
    busy_ns: u64,
}

/// Input adapter for cooperative cancellation: once the run's
/// [`CancelFlag`] flips, the wrapped input reports clean end-of-stream
/// at the next pull point, so the normal drain finalizes everything
/// routed so far into a valid partial archive. Packets already pulled
/// are never lost; packets never pulled are simply not in the archive —
/// exactly the cut semantics `flowzip serve`'s rotation relies on.
struct Cancellable<T> {
    inner: T,
    cancel: CancelFlag,
}

impl<I> Iterator for Cancellable<I>
where
    I: Iterator<Item = Result<PacketRecord, TraceError>>,
{
    type Item = Result<PacketRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.cancel.is_cancelled() {
            return None;
        }
        self.inner.next()
    }
}

impl<B: BatchRead> BatchRead for Cancellable<B> {
    fn next_batch(&mut self) -> Option<Result<Vec<PacketRecord>, TraceError>> {
        if self.cancel.is_cancelled() {
            return None;
        }
        self.inner.next_batch()
    }
}

/// One shard's state machine: accumulate → finalize online → cluster,
/// with idle eviction keeping the accumulator bounded. Used both by the
/// worker threads and by the inline single-shard fast path.
struct ShardWorker {
    acc: FlowAccumulator,
    asm: FlowAssembler,
    idle_timeout: Option<Duration>,
    /// Scan for idle flows at a quarter of the timeout horizon: often
    /// enough that stale state dies promptly, rare enough to stay off
    /// the per-packet fast path.
    scan_interval: Option<Duration>,
    next_scan: Option<Timestamp>,
    obs: ShardObs,
    /// Thread-busy nanoseconds (accumulate + encode), counted only when
    /// metrics are on.
    busy_ns: u64,
    /// Evictions already mirrored into the counter, so each scan only
    /// adds its delta.
    evicted_seen: u64,
}

impl ShardWorker {
    fn new(
        params: Params,
        idle_timeout: Option<Duration>,
        telemetry: bool,
        obs: ShardObs,
    ) -> ShardWorker {
        ShardWorker {
            acc: FlowAccumulator::with_telemetry(params.clone(), telemetry),
            asm: FlowAssembler::with_telemetry(params, telemetry),
            idle_timeout,
            scan_interval: idle_timeout.map(|t| Duration::from_micros((t.as_micros() / 4).max(1))),
            next_scan: None,
            obs,
            busy_ns: 0,
            evicted_seen: 0,
        }
    }

    fn process_batch(&mut self, batch: &[PacketRecord]) {
        let _span = self.obs.track.span("accumulate");
        let t0 = self.obs.accumulate_ns.start();
        for p in batch {
            self.acc.push(p);
        }
        if let (Some(timeout), Some(interval), Some(newest)) = (
            self.idle_timeout,
            self.scan_interval,
            batch.last().map(|p| p.timestamp()),
        ) {
            if self.next_scan.is_none_or(|at| newest >= at) {
                self.acc.evict_idle(Timestamp::from_micros(
                    newest.as_micros().saturating_sub(timeout.as_micros()),
                ));
                self.next_scan = Some(newest.saturating_add(interval));
            }
        }
        for flow in self.acc.drain_completed() {
            self.asm.consume(&flow);
        }
        if let Some(t0) = t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            self.busy_ns += ns;
            self.obs.accumulate_ns.record(ns);
            self.obs.packets.add(batch.len() as u64);
            self.obs.batches.inc();
            self.obs.active_flows.set(self.acc.active_flows() as i64);
            let evicted = self.acc.evicted_flows();
            self.obs.evicted.add(evicted - self.evicted_seen);
            self.evicted_seen = evicted;
        }
    }

    /// Finalizes the shard. With `encode` set the assembler serializes
    /// itself into a container-v2 section *here, on the shard's thread*
    /// — the work that used to be the writer's serial tail.
    fn finish(mut self, encode: bool) -> ShardOutput {
        let span = self.obs.track.span("encode");
        let t0 = self.obs.encode_ns.is_enabled().then(Instant::now);
        let peak_active = self.acc.peak_active_flows() as u64;
        let evicted = self.acc.evicted_flows();
        for flow in self.acc.finish() {
            self.asm.consume(&flow);
        }
        let result = if encode {
            let section = self.asm.into_section();
            if let Some(rows) = section.telemetry.as_deref() {
                self.obs.telemetry_flows.add(rows.len() as u64);
                self.obs
                    .telemetry_retrans
                    .add(rows.iter().map(FlowTelemetry::retransmissions).sum());
                self.obs
                    .telemetry_rtt_samples
                    .add(rows.iter().map(|t| t.rtt_samples).sum());
                for t in rows.iter().filter(|t| t.rtt_samples > 0) {
                    self.obs.telemetry_rtt_us.record(t.rtt_us);
                }
            }
            ShardResult::Section(section)
        } else {
            ShardResult::State(self.asm)
        };
        drop(span);
        if let Some(t0) = t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            self.busy_ns += ns;
            self.obs.encode_ns.add(ns);
            self.obs.evicted.add(evicted - self.evicted_seen);
            self.obs.active_flows.set(0);
        }
        ShardOutput {
            result,
            peak_active,
            evicted,
            busy_ns: self.busy_ns,
        }
    }
}

/// One shard's worker loop under **serial** routing: every received
/// batch is already an exact router-built block, so it processes as-is
/// until the channel closes.
fn run_shard(
    rx: mpsc::Receiver<Vec<PacketRecord>>,
    params: Params,
    idle_timeout: Option<Duration>,
    telemetry: bool,
    encode: bool,
    obs: ShardObs,
) -> ShardOutput {
    let mut worker = ShardWorker::new(params, idle_timeout, telemetry, obs);
    while let Ok(batch) = rx.recv() {
        worker.obs.queue_depth.dec();
        worker.process_batch(&batch);
    }
    worker.finish(encode)
}

/// One shard's worker loop under **parallel** routing: arrivals are
/// variable-size sub-batches (whatever each pulled batch happened to
/// hash here), so a [`Rechunker`] re-blocks them into exact `batch_size`
/// chunks first — eviction-scan timing keys off batch boundaries, and
/// boundaries must match the serial router's for byte-identical output.
fn run_shard_rechunked(
    rx: mpsc::Receiver<Vec<PacketRecord>>,
    params: Params,
    idle_timeout: Option<Duration>,
    telemetry: bool,
    encode: bool,
    batch_size: usize,
    obs: ShardObs,
) -> ShardOutput {
    let mut worker = ShardWorker::new(params, idle_timeout, telemetry, obs);
    let mut rechunk = Rechunker::new(batch_size);
    while let Ok(arrival) = rx.recv() {
        worker.obs.queue_depth.dec();
        rechunk.push(arrival, |chunk| worker.process_batch(chunk));
    }
    rechunk.finish(|chunk| worker.process_batch(chunk));
    worker.finish(encode)
}

/// The sharded streaming compressor. Construct via
/// [`StreamingEngine::builder`]; see the [crate docs](crate) for the
/// architecture.
#[derive(Debug, Clone)]
pub struct StreamingEngine {
    config: EngineConfig,
}

impl StreamingEngine {
    /// Creates an engine from a resolved configuration.
    pub fn new(config: EngineConfig) -> StreamingEngine {
        StreamingEngine { config }
    }

    /// Starts a configuration builder with library defaults.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Compresses a fallible packet stream — the general entry point that
    /// [`TshReader`](flowzip_trace::TshReader) and
    /// [`PcapReader`](flowzip_trace::PcapReader) plug into directly.
    ///
    /// # Errors
    ///
    /// The first reader error aborts the run and is returned; packets
    /// already routed are discarded with the worker state.
    ///
    /// # Panics
    ///
    /// Re-raises panics from worker threads (a bug in the pipeline, never
    /// an input condition).
    pub fn compress_stream<I>(
        &self,
        input: I,
    ) -> Result<(CompressedTrace, EngineReport), TraceError>
    where
        I: IntoIterator<Item = Result<PacketRecord, TraceError>>,
        I::IntoIter: Send,
    {
        let started = Instant::now();
        let outputs = self.run_routed_iter(input.into_iter(), false)?;
        let (compressed, _, report) = self.merge(outputs, started.elapsed().as_secs_f64());
        Ok((compressed, report))
    }

    /// Compresses a batch-granular source ([`BatchRead`]) — the native
    /// entry point for multi-file input, where reader threads already
    /// build whole decoded batches and routing workers can take them
    /// one channel-receive at a time. Batch *boundaries* carry no
    /// meaning (the [`BatchRead`] contract), so output is identical to
    /// compressing the concatenated packet stream.
    ///
    /// # Errors
    ///
    /// The first reader error aborts the run and is returned.
    ///
    /// # Panics
    ///
    /// Re-raises panics from worker threads.
    pub fn compress_batches<B>(
        &self,
        source: B,
    ) -> Result<(CompressedTrace, EngineReport), TraceError>
    where
        B: BatchRead + Send,
    {
        let started = Instant::now();
        let outputs = self.run_routed_batches(source, false)?;
        let (compressed, _, report) = self.merge(outputs, started.elapsed().as_secs_f64());
        Ok((compressed, report))
    }

    /// [`StreamingEngine::compress_batches`] straight to serialized
    /// archive bytes in the configured [`ArchiveFormat`].
    ///
    /// # Errors
    ///
    /// The first reader error aborts the run and is returned.
    ///
    /// # Panics
    ///
    /// Re-raises panics from worker threads.
    pub fn compress_batches_to_bytes<B>(
        &self,
        source: B,
    ) -> Result<(Vec<u8>, EngineReport), TraceError>
    where
        B: BatchRead + Send,
    {
        let started = Instant::now();
        let encode = self.config.format == ArchiveFormat::V2;
        let outputs = self.run_routed_batches(source, encode)?;
        Ok(self.outputs_to_bytes(outputs, started))
    }

    /// Compresses a fallible packet stream straight to serialized archive
    /// bytes in the configured [`ArchiveFormat`]. With v2 (the default)
    /// every shard encodes its own archive section on its own thread and
    /// the serial tail collapses to index assembly — O(shards), not
    /// O(trace); with v1 this is the legacy single-threaded
    /// serialization, kept for byte-compatible output.
    ///
    /// # Errors
    ///
    /// The first reader error aborts the run and is returned.
    ///
    /// # Panics
    ///
    /// Re-raises panics from worker threads.
    pub fn compress_stream_to_bytes<I>(
        &self,
        input: I,
    ) -> Result<(Vec<u8>, EngineReport), TraceError>
    where
        I: IntoIterator<Item = Result<PacketRecord, TraceError>>,
        I::IntoIter: Send,
    {
        let started = Instant::now();
        let encode = self.config.format == ArchiveFormat::V2;
        let outputs = self.run_routed_iter(input.into_iter(), encode)?;
        Ok(self.outputs_to_bytes(outputs, started))
    }

    /// Serializes finished shard outputs in the configured format. With
    /// v2 the shards already encoded their own sections (`encode` was
    /// set), so the serial tail collapses to index assembly; with v1
    /// this is the legacy single-threaded serialization.
    fn outputs_to_bytes(
        &self,
        outputs: Vec<ShardOutput>,
        started: Instant,
    ) -> (Vec<u8>, EngineReport) {
        let elapsed = started.elapsed().as_secs_f64();
        let track = self.config.profiler.track("container");
        match self.config.format {
            ArchiveFormat::V1 => {
                // merge() already encodes the archive (the report's
                // dataset sizes need it), so the serial tail — shard
                // merge, time-seq sort, encode — runs exactly once.
                let span = track.span("serialize");
                let ser = Instant::now();
                let (_, bytes, mut report) = self.merge(outputs, elapsed);
                drop(span);
                report.serialize_secs = ser.elapsed().as_secs_f64();
                report.sections = 1;
                report.archive_bytes = bytes.len() as u64;
                self.record_serialize(report.serialize_secs, 1);
                (bytes, report)
            }
            ArchiveFormat::V2 => {
                let agg = ShardAggregates::fold(&outputs);
                let sections: Vec<ShardSection> = outputs
                    .into_iter()
                    .map(|o| match o.result {
                        ShardResult::Section(s) => s,
                        ShardResult::State(_) => unreachable!("v2 pipeline encodes in-worker"),
                    })
                    .collect();
                let n_sections = sections.len();

                // The entire serial serialization tail: template-store
                // merge + address dedupe + index + payload concat.
                let span = track.span("serialize");
                let ser = Instant::now();
                let (bytes, mut report) = assemble_sections(
                    &self.config.params,
                    sections,
                    agg.tsh_bytes,
                    agg.header_bytes,
                );
                drop(span);
                let serialize_secs = ser.elapsed().as_secs_f64();
                report.peak_active_flows = agg.peak_active;

                let mut engine_report = self.engine_report(&agg, elapsed, report);
                engine_report.serialize_secs = serialize_secs;
                engine_report.sections = n_sections;
                engine_report.archive_bytes = bytes.len() as u64;
                self.record_serialize(serialize_secs, n_sections as u64);
                (bytes, engine_report)
            }
        }
    }

    /// Mirrors the serial-tail figures into the metrics registry.
    fn record_serialize(&self, secs: f64, sections: u64) {
        let metrics = &self.config.metrics;
        if metrics.is_enabled() {
            metrics
                .counter(flowzip_obs::names::CONTAINER_SERIALIZE_NS)
                .add((secs * 1e9) as u64);
            metrics
                .counter(flowzip_obs::names::CONTAINER_SECTIONS)
                .add(sections);
        }
    }

    /// Dispatches an iterator input on the [`Routing`] knob: the serial
    /// router consumes it per-packet; parallel routing chunks it into
    /// `batch_size` batches ([`IterBatches`]) so routing workers can
    /// share it at O(1) lock-held work per batch.
    fn run_routed_iter<I>(&self, input: I, encode: bool) -> Result<Vec<ShardOutput>, TraceError>
    where
        I: Iterator<Item = Result<PacketRecord, TraceError>> + Send,
    {
        let input = Cancellable {
            inner: input,
            cancel: self.config.cancel.clone(),
        };
        match self.config.routing {
            Routing::Serial => self.run_pipeline(input, encode),
            Routing::Parallel => {
                self.run_pipeline_parallel(IterBatches::new(input, self.config.batch_size), encode)
            }
        }
    }

    /// Dispatches a batch-granular source on the [`Routing`] knob: the
    /// serial router flattens it back to packets ([`BatchPackets`]);
    /// parallel routing consumes it natively.
    fn run_routed_batches<B>(&self, source: B, encode: bool) -> Result<Vec<ShardOutput>, TraceError>
    where
        B: BatchRead + Send,
    {
        let source = Cancellable {
            inner: source,
            cancel: self.config.cancel.clone(),
        };
        match self.config.routing {
            Routing::Serial => self.run_pipeline(BatchPackets::new(source), encode),
            Routing::Parallel => self.run_pipeline_parallel(source, encode),
        }
    }

    /// The parallel-routing pipeline: `routers` routing workers share
    /// the [`BatchRead`] source behind the [`RouteFabric`], hash their
    /// own pulled batches concurrently, and deliver shard-sticky
    /// sub-batches in sequence-ticket order; each shard re-chunks its
    /// arrivals to exact `batch_size` blocks. Per-shard packet order
    /// and batch boundaries both equal the serial router's, so output
    /// is byte-identical (see [`crate::route`]).
    fn run_pipeline_parallel<B>(
        &self,
        source: B,
        encode: bool,
    ) -> Result<Vec<ShardOutput>, TraceError>
    where
        B: BatchRead + Send,
    {
        let config = &self.config;
        if config.shards == 1 {
            // Routing cannot be the bottleneck of one shard: take the
            // serial path's inline fast path (no channels, no threads),
            // which rebuilds the same batch_size blocks from the
            // flattened stream.
            return self.run_pipeline(BatchPackets::new(source), encode);
        }
        let routers = config.routers.max(1);
        let obs = EngineObs::new(&config.metrics, &config.profiler, config.shards);
        let fabric = RouteFabric::new(source, config.shards, obs.route.clone());

        // Boxed because the task list mixes shard loops (return
        // Some(output)) with extra routing workers (return None, borrow
        // the fabric); the scoped pool lets both borrow this frame.
        let mut senders = Vec::with_capacity(config.shards);
        let mut tasks: Vec<Box<dyn FnOnce() -> Option<ShardOutput> + Send + '_>> =
            Vec::with_capacity(config.shards + routers - 1);
        for shard_obs in obs.shards.iter().cloned() {
            let (tx, rx) = mpsc::sync_channel::<Vec<PacketRecord>>(config.channel_capacity);
            let params = config.params.clone();
            let idle_timeout = config.idle_timeout;
            let telemetry = config.telemetry;
            let batch_size = config.batch_size;
            senders.push(tx);
            tasks.push(Box::new(move || {
                Some(run_shard_rechunked(
                    rx,
                    params,
                    idle_timeout,
                    telemetry,
                    encode,
                    batch_size,
                    shard_obs,
                ))
            }));
        }
        for _ in 1..routers {
            let fabric = &fabric;
            let senders = senders.clone();
            tasks.push(Box::new(move || {
                fabric.run_router(senders);
                None
            }));
        }

        // Every task must run concurrently (shards block on recv, extra
        // routers block on the sequencer), so the pool is sized to the
        // task count; router 0 runs in the foreground on this thread and
        // owns the original senders — the shard channels close when the
        // last router drops its clones.
        let pool = WorkerPool::new(config.shards + routers - 1);
        let (outputs, ()) = pool.run_with(tasks, {
            let fabric = &fabric;
            move || fabric.run_router(senders)
        });
        let outputs: Vec<ShardOutput> = outputs.into_iter().flatten().collect();
        fabric.into_result()?;
        Ok(outputs)
    }

    /// Runs the read → route → shard pipeline, returning per-shard
    /// outputs in shard order. `encode` makes each worker serialize its
    /// assembler into a v2 section before handing it back.
    fn run_pipeline<I>(&self, input: I, encode: bool) -> Result<Vec<ShardOutput>, TraceError>
    where
        I: IntoIterator<Item = Result<PacketRecord, TraceError>>,
    {
        let config = &self.config;
        let obs = EngineObs::new(&config.metrics, &config.profiler, config.shards);
        if config.shards == 1 {
            // Single shard: run everything inline. No channel, no second
            // thread — this is the honest sequential baseline the
            // `engine_throughput` bench scales against, and it makes the
            // one-shard engine byte-identical to the batch compressor by
            // construction.
            let mut worker = ShardWorker::new(
                config.params.clone(),
                config.idle_timeout,
                config.telemetry,
                obs.shards[0].clone(),
            );
            let mut buf: Vec<PacketRecord> = Vec::with_capacity(config.batch_size);
            for item in input {
                buf.push(item?);
                if buf.len() >= config.batch_size {
                    worker.process_batch(&buf);
                    buf.clear();
                }
            }
            if !buf.is_empty() {
                worker.process_batch(&buf);
            }
            return Ok(vec![worker.finish(encode)]);
        }
        // One pool worker per shard: every shard loop must run
        // concurrently with the router (bounded channels would deadlock
        // a queued shard), so the pool is sized to the task count —
        // shards use the same shared `WorkerPool` abstraction as the
        // multi-file readers and the v2 section decoder, not a bespoke
        // spawn loop.
        let mut senders = Vec::with_capacity(config.shards);
        let mut tasks = Vec::with_capacity(config.shards);
        for shard_obs in obs.shards.iter().cloned() {
            let (tx, rx) = mpsc::sync_channel::<Vec<PacketRecord>>(config.channel_capacity);
            let params = config.params.clone();
            let idle_timeout = config.idle_timeout;
            let telemetry = config.telemetry;
            senders.push(tx);
            tasks.push(move || run_shard(rx, params, idle_timeout, telemetry, encode, shard_obs));
        }

        let queue_depth = obs.route.queue_depth.clone();
        let pool = WorkerPool::new(config.shards);
        let (outputs, input_err) = pool.run_with(tasks, move || {
            let mut buffers: Vec<Vec<PacketRecord>> = (0..config.shards)
                .map(|_| Vec::with_capacity(config.batch_size))
                .collect();
            let mut input_err = None;
            'route: for item in input {
                match item {
                    Ok(p) => {
                        let s = shard_of(&p, config.shards);
                        buffers[s].push(p);
                        if buffers[s].len() >= config.batch_size {
                            let batch = std::mem::replace(
                                &mut buffers[s],
                                Vec::with_capacity(config.batch_size),
                            );
                            if senders[s].send(batch).is_err() {
                                // Worker gone: stop routing and surface
                                // its panic from the pool's join.
                                break 'route;
                            }
                            queue_depth[s].inc();
                        }
                    }
                    Err(e) => {
                        input_err = Some(e);
                        break 'route;
                    }
                }
            }
            if input_err.is_none() {
                for (s, buf) in buffers.into_iter().enumerate() {
                    if !buf.is_empty() {
                        // A send can only fail if the worker died; the
                        // pool's join re-raises its panic.
                        if senders[s].send(buf).is_ok() {
                            queue_depth[s].inc();
                        }
                    }
                }
            }
            // Senders drop here, closing every shard channel.
            input_err
        });
        match input_err {
            Some(e) => Err(e),
            None => Ok(outputs),
        }
    }

    /// Compresses a pluggable [`InputSource`] — a
    /// [`FileSource`](flowzip_io::FileSource) (optionally prefetched) or
    /// a [`MultiFileSource`](flowzip_io::MultiFileSource) over a
    /// pre-split capture set — and fills the report's
    /// read-wait vs. compute split from the source's
    /// [`IoStats`](flowzip_io::IoStats).
    ///
    /// # Errors
    ///
    /// The first reader error aborts the run and is returned.
    ///
    /// # Panics
    ///
    /// Re-raises panics from worker threads.
    #[deprecated(
        since = "0.1.0",
        note = "use flowzip-pipeline's Pipeline::compress().input(Input::source(..)) session API"
    )]
    pub fn compress_source<S: InputSource>(
        &self,
        source: S,
    ) -> Result<(CompressedTrace, EngineReport), TraceError>
    where
        S::Packets: Send,
    {
        let stats = source.stats();
        let (compressed, mut report) = self.compress_stream(source.into_packets())?;
        fill_read_wait(&mut report, &stats);
        Ok((compressed, report))
    }

    /// [`StreamingEngine::compress_source`] straight to serialized
    /// archive bytes in the configured [`ArchiveFormat`].
    ///
    /// # Errors
    ///
    /// The first reader error aborts the run and is returned.
    ///
    /// # Panics
    ///
    /// Re-raises panics from worker threads.
    #[deprecated(
        since = "0.1.0",
        note = "use flowzip-pipeline's Pipeline::compress().input(Input::source(..)) session API"
    )]
    pub fn compress_source_to_bytes<S: InputSource>(
        &self,
        source: S,
    ) -> Result<(Vec<u8>, EngineReport), TraceError>
    where
        S::Packets: Send,
    {
        let stats = source.stats();
        let (bytes, mut report) = self.compress_stream_to_bytes(source.into_packets())?;
        fill_read_wait(&mut report, &stats);
        Ok((bytes, report))
    }

    /// Convenience: compresses an infallible packet sequence.
    ///
    /// # Errors
    ///
    /// Never fails; the `Result` mirrors [`StreamingEngine::compress_stream`].
    #[deprecated(
        since = "0.1.0",
        note = "use flowzip-pipeline's Pipeline::compress().input(Input::packets(..)) session API"
    )]
    pub fn compress_packets<I>(
        &self,
        packets: I,
    ) -> Result<(CompressedTrace, EngineReport), TraceError>
    where
        I: IntoIterator<Item = PacketRecord>,
        I::IntoIter: Send,
    {
        self.compress_stream(packets.into_iter().map(Ok))
    }

    /// Convenience: compresses an in-memory trace (the batch-compressor
    /// interface, for comparisons and tests).
    ///
    /// # Errors
    ///
    /// Never fails; the `Result` mirrors [`StreamingEngine::compress_stream`].
    #[deprecated(
        since = "0.1.0",
        note = "use flowzip-pipeline's Pipeline::compress().input(Input::trace(..)) session API"
    )]
    pub fn compress_trace(
        &self,
        trace: &Trace,
    ) -> Result<(CompressedTrace, EngineReport), TraceError> {
        self.compress_stream(trace.iter().cloned().map(Ok))
    }

    /// Convenience: compresses an in-memory trace straight to archive
    /// bytes in the configured format.
    ///
    /// # Errors
    ///
    /// Never fails; the `Result` mirrors
    /// [`StreamingEngine::compress_stream_to_bytes`].
    #[deprecated(
        since = "0.1.0",
        note = "use flowzip-pipeline's Pipeline::compress().input(Input::trace(..)) session API"
    )]
    pub fn compress_trace_to_bytes(
        &self,
        trace: &Trace,
    ) -> Result<(Vec<u8>, EngineReport), TraceError> {
        self.compress_stream_to_bytes(trace.iter().cloned().map(Ok))
    }

    /// Folds per-shard outputs into one archive plus the aggregate
    /// report. The dataset assembly itself is `flowzip-core`'s
    /// [`assemble_shards`] — the same code the batch compressor runs —
    /// so only the throughput/memory bookkeeping lives here.
    fn merge(
        &self,
        outputs: Vec<ShardOutput>,
        elapsed_secs: f64,
    ) -> (CompressedTrace, Vec<u8>, EngineReport) {
        let agg = ShardAggregates::fold(&outputs);
        let (compressed, mut report, encoded) = assemble_shards(
            &self.config.params,
            outputs
                .into_iter()
                .map(|o| match o.result {
                    ShardResult::State(asm) => asm,
                    ShardResult::Section(_) => {
                        unreachable!("in-memory merge never requests encoded sections")
                    }
                })
                .collect(),
            agg.tsh_bytes,
            agg.header_bytes,
        );
        report.peak_active_flows = agg.peak_active;
        let engine_report = self.engine_report(&agg, elapsed_secs, report);
        (compressed, encoded, engine_report)
    }

    /// Builds the aggregate [`EngineReport`] from folded shard counters.
    /// Serialization fields (`serialize_secs`, `sections`,
    /// `archive_bytes`) start zeroed; the to-bytes paths fill them in.
    fn engine_report(
        &self,
        agg: &ShardAggregates,
        elapsed_secs: f64,
        report: CompressionReport,
    ) -> EngineReport {
        let elapsed = elapsed_secs.max(f64::EPSILON);
        // Routers the run *actually* used: serial routing and the
        // single-shard inline fast path both route on one thread.
        let routers = match self.config.routing {
            Routing::Serial => 1,
            Routing::Parallel if self.config.shards == 1 => 1,
            Routing::Parallel => self.config.routers.max(1),
        };
        let mut engine_report = EngineReport {
            shards: self.config.shards,
            routing: self.config.routing,
            routers,
            elapsed_secs,
            packets_per_sec: agg.packets as f64 / elapsed,
            mb_per_sec: agg.tsh_bytes as f64 / elapsed / 1e6,
            evicted_flows: agg.evicted,
            // Raw-iterator runs carry no IoStats handle; the
            // compress_source entry points overwrite the split.
            read_wait_secs: 0.0,
            compute_secs: elapsed_secs,
            serialize_secs: 0.0,
            stage_busy_secs: agg.max_busy_ns as f64 / 1e9,
            unattributed_secs: 0.0,
            sections: 0,
            archive_bytes: 0,
            report,
        };
        engine_report.reconcile_time_split();
        engine_report
    }
}

/// Fills a report's read-wait/compute split from a drained source's
/// stats. The wait is clamped to elapsed (counters tick on reader
/// threads and can race the last wall-clock read by microseconds).
fn fill_read_wait(report: &mut EngineReport, stats: &flowzip_io::IoStats) {
    report.read_wait_secs = stats.read_wait_secs().min(report.elapsed_secs);
    report.compute_secs = (report.elapsed_secs - report.read_wait_secs).max(0.0);
    report.reconcile_time_split();
}

/// Throughput/memory counters folded over per-shard outputs — computed
/// once and shared by the v1 merge and v2 section-assembly paths so the
/// two report pipelines cannot drift.
struct ShardAggregates {
    packets: u64,
    peak_active: u64,
    evicted: u64,
    /// Every packet costs 44 B as a TSH record and 40 B of bare
    /// headers — the §5 baselines, computable without the trace.
    tsh_bytes: u64,
    header_bytes: u64,
    /// The busiest single shard thread's accumulate+encode nanoseconds
    /// (0 when metrics are off — busy time is only measured then).
    /// Shards run concurrently, so the *max*, not the sum, is the
    /// stage's wall-clock footprint.
    max_busy_ns: u64,
}

impl ShardAggregates {
    fn fold(outputs: &[ShardOutput]) -> ShardAggregates {
        let packets: u64 = outputs.iter().map(|o| o.result.packets()).sum();
        ShardAggregates {
            packets,
            peak_active: outputs.iter().map(|o| o.peak_active).sum(),
            evicted: outputs.iter().map(|o| o.evicted).sum(),
            tsh_bytes: packets * flowzip_trace::tsh::RECORD_BYTES as u64,
            header_bytes: packets * flowzip_trace::packet::HEADER_BYTES as u64,
            max_busy_ns: outputs.iter().map(|o| o.busy_ns).max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
// The unit tests deliberately keep exercising the deprecated convenience
// shims: they must stay behaviorally identical to the primitives until
// they are removed.
#[allow(deprecated)]
mod tests {
    use super::*;
    use flowzip_core::Compressor;

    fn pkt(port: u16, us: u64, flags: TcpFlags) -> PacketRecord {
        PacketRecord::builder()
            .src(Ipv4Addr::new(10, 0, 0, 1), port)
            .dst(Ipv4Addr::new(192, 0, 2, 9), 80)
            .timestamp(Timestamp::from_micros(us))
            .flags(flags)
            .build()
    }

    #[test]
    fn empty_input_produces_empty_archive() {
        let engine = StreamingEngine::builder().shards(2).build();
        let (ct, report) = engine.compress_packets(Vec::new()).unwrap();
        assert_eq!(ct.flow_count(), 0);
        assert_eq!(report.report.packets, 0);
        assert_eq!(report.report.ratio_vs_tsh, 0.0);
    }

    #[test]
    fn reader_error_aborts_the_run() {
        let engine = StreamingEngine::builder().shards(2).batch_size(1).build();
        let input = vec![
            Ok(pkt(4000, 0, TcpFlags::SYN)),
            Err(TraceError::TruncatedRecord { got: 3, need: 44 }),
            Ok(pkt(4001, 10, TcpFlags::SYN)),
        ];
        let err = engine.compress_stream(input).unwrap_err();
        assert!(matches!(
            err,
            TraceError::TruncatedRecord { got: 3, need: 44 }
        ));
    }

    #[test]
    fn cancel_flag_drains_to_a_valid_partial_archive() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        // 200 single-packet flows; the flag flips after packet 50, so the
        // run must end early yet still produce a decodable archive whose
        // packet count covers at least everything pulled before the flip.
        for routing in [Routing::Serial, Routing::Parallel] {
            let flag = Arc::new(AtomicBool::new(false));
            let engine = StreamingEngine::builder()
                .shards(2)
                .batch_size(8)
                .routing(routing)
                .cancel_flag(flag.clone())
                .build();
            let tripwire = flag.clone();
            let mut yielded = 0u64;
            let input = (0..200u64).map(move |i| {
                yielded += 1;
                if yielded == 50 {
                    tripwire.store(true, Ordering::SeqCst);
                }
                Ok(pkt(4000 + (i % 500) as u16, i * 1_000, TcpFlags::SYN))
            });
            let (bytes, report) = engine.compress_stream_to_bytes(input).unwrap();
            assert!(
                report.report.packets >= 50 && report.report.packets < 200,
                "routing={routing:?}: expected a partial run, got {} packets",
                report.report.packets
            );
            let decoded = CompressedTrace::from_bytes(&bytes).unwrap();
            assert!(decoded.validate().is_ok());
        }
    }

    #[test]
    fn both_directions_of_a_flow_share_a_shard() {
        for port in [1000u16, 2000, 3000, 4000, 50000] {
            let fwd = pkt(port, 0, TcpFlags::SYN);
            let rev = PacketRecord::builder()
                .src(Ipv4Addr::new(192, 0, 2, 9), 80)
                .dst(Ipv4Addr::new(10, 0, 0, 1), port)
                .timestamp(Timestamp::from_micros(1))
                .flags(TcpFlags::SYN | TcpFlags::ACK)
                .build();
            for shards in [2usize, 3, 7] {
                assert_eq!(shard_of(&fwd, shards), shard_of(&rev, shards));
            }
        }
    }

    #[test]
    fn tiny_trace_matches_batch_counts_across_shard_counts() {
        let mut trace = Trace::new();
        for (i, port) in (4000u16..4024).enumerate() {
            let base = i as u64 * 1_000;
            trace.push(pkt(port, base, TcpFlags::SYN));
            trace.push(pkt(port, base + 10, TcpFlags::ACK));
            trace.push(pkt(port, base + 20, TcpFlags::RST));
        }
        let (_, batch) = Compressor::new(Params::paper()).compress(&trace);
        for shards in [1usize, 2, 5] {
            let engine = StreamingEngine::builder()
                .shards(shards)
                .batch_size(4)
                .build();
            let (ct, streamed) = engine.compress_trace(&trace).unwrap();
            assert_eq!(streamed.report.packets, batch.packets);
            assert_eq!(streamed.report.flows, batch.flows);
            assert_eq!(streamed.report.short_flows, batch.short_flows);
            assert_eq!(streamed.report.long_flows, batch.long_flows);
            assert_eq!(streamed.report.addresses, batch.addresses);
            assert_eq!(streamed.report.tsh_bytes, batch.tsh_bytes);
            ct.validate().unwrap();
        }
    }

    #[test]
    fn v2_bytes_decode_to_the_same_archive_as_v1() {
        let mut trace = Trace::new();
        for (i, port) in (4000u16..4040).enumerate() {
            let base = i as u64 * 1_000;
            trace.push(pkt(port, base, TcpFlags::SYN));
            trace.push(pkt(port, base + 10, TcpFlags::ACK));
            trace.push(pkt(port, base + 20, TcpFlags::FIN));
        }
        for shards in [1usize, 2, 5] {
            let v1_engine = StreamingEngine::builder()
                .shards(shards)
                .batch_size(8)
                .format(ArchiveFormat::V1)
                .build();
            let v2_engine = StreamingEngine::builder()
                .shards(shards)
                .batch_size(8)
                .format(ArchiveFormat::V2)
                .build();
            let (v1_bytes, v1_report) = v1_engine.compress_trace_to_bytes(&trace).unwrap();
            let (v2_bytes, v2_report) = v2_engine.compress_trace_to_bytes(&trace).unwrap();

            assert_eq!(ArchiveFormat::detect(&v1_bytes).unwrap(), ArchiveFormat::V1);
            assert_eq!(ArchiveFormat::detect(&v2_bytes).unwrap(), ArchiveFormat::V2);
            // Same shard states → the decoded global archives are equal,
            // whichever container carried them.
            let from_v1 = CompressedTrace::from_bytes(&v1_bytes).unwrap();
            let from_v2 = CompressedTrace::from_bytes(&v2_bytes).unwrap();
            assert_eq!(from_v1, from_v2, "{shards} shards");

            assert_eq!(v1_report.sections, 1);
            assert_eq!(v2_report.sections, shards);
            assert_eq!(v1_report.archive_bytes, v1_bytes.len() as u64);
            assert_eq!(v2_report.archive_bytes, v2_bytes.len() as u64);
            assert_eq!(v2_report.report.packets, v1_report.report.packets);
            assert_eq!(v2_report.report.clusters, v1_report.report.clusters);
            // v2 report sizes describe the actual v2 file.
            assert_eq!(v2_report.report.sizes.total(), v2_bytes.len() as u64);
        }
    }

    #[test]
    fn single_shard_v2_bytes_match_batch_to_bytes_v2() {
        let mut trace = Trace::new();
        for (i, port) in (5000u16..5016).enumerate() {
            let base = i as u64 * 2_000;
            trace.push(pkt(port, base, TcpFlags::SYN));
            trace.push(pkt(port, base + 15, TcpFlags::RST));
        }
        let (batch_archive, _) = Compressor::new(Params::paper()).compress(&trace);
        let engine = StreamingEngine::builder().shards(1).build();
        let (bytes, _) = engine.compress_trace_to_bytes(&trace).unwrap();
        assert_eq!(bytes, batch_archive.to_bytes_v2());
    }

    #[test]
    fn telemetry_is_a_pure_suffix_and_counts_into_metrics() {
        // Flows with a full handshake and one data exchange, so the
        // derivation has RTT samples to harvest.
        let mut trace = Trace::new();
        for (i, port) in (6000u16..6024).enumerate() {
            let base = i as u64 * 5_000;
            let dir = |c2s: bool, us: u64, flags: TcpFlags, len: u16, seq: u32, ack: u32| {
                let b = PacketRecord::builder()
                    .timestamp(Timestamp::from_micros(base + us))
                    .flags(flags)
                    .payload_len(len)
                    .seq(seq)
                    .ack(ack);
                if c2s {
                    b.src(Ipv4Addr::new(10, 0, 0, 1), port)
                        .dst(Ipv4Addr::new(192, 0, 2, 9), 80)
                        .build()
                } else {
                    b.src(Ipv4Addr::new(192, 0, 2, 9), 80)
                        .dst(Ipv4Addr::new(10, 0, 0, 1), port)
                        .build()
                }
            };
            trace.push(dir(true, 0, TcpFlags::SYN, 0, 100, 0));
            trace.push(dir(false, 200, TcpFlags::SYN | TcpFlags::ACK, 0, 900, 101));
            trace.push(dir(true, 300, TcpFlags::ACK, 0, 101, 901));
            trace.push(dir(true, 320, TcpFlags::ACK, 50, 101, 901));
            trace.push(dir(false, 350, TcpFlags::ACK, 0, 901, 151));
            trace.push(dir(true, 400, TcpFlags::RST, 0, 151, 901));
        }
        for shards in [1usize, 3] {
            let off = StreamingEngine::builder()
                .shards(shards)
                .batch_size(8)
                .format(ArchiveFormat::V2)
                .build();
            let metrics = flowzip_obs::Metrics::enabled();
            let on = StreamingEngine::builder()
                .shards(shards)
                .batch_size(8)
                .format(ArchiveFormat::V2)
                .telemetry(true)
                .metrics(metrics.clone())
                .build();
            let (off_bytes, _) = off.compress_trace_to_bytes(&trace).unwrap();
            let (on_bytes, _) = on.compress_trace_to_bytes(&trace).unwrap();

            // The FZT1 block is a pure suffix: stripping it reproduces
            // the telemetry-off archive byte for byte.
            assert!(on_bytes.len() > off_bytes.len(), "{shards} shards");
            assert_eq!(&on_bytes[..off_bytes.len()], &off_bytes[..]);
            let telem = flowzip_core::v2_telemetry(&on_bytes).unwrap().unwrap();
            assert_eq!(telem.flow_count(), 24);
            assert!(flowzip_core::v2_telemetry(&off_bytes).unwrap().is_none());
            assert!(telem
                .sections
                .iter()
                .flat_map(|s| &s.flows)
                .all(|t| t.rtt_samples >= 2 && t.bytes == 50));

            use flowzip_obs::names;
            assert_eq!(metrics.counter(names::TELEMETRY_FLOWS).value(), 24);
            assert!(metrics.counter(names::TELEMETRY_RTT_SAMPLES).value() >= 48);
            assert_eq!(metrics.counter(names::TELEMETRY_RETRANSMISSIONS).value(), 0);
            // Every flow had a measurable RTT, so each contributed one
            // observation to the RTT histogram.
            let rtt_hist = metrics
                .snapshot()
                .histogram(names::TELEMETRY_RTT_US)
                .cloned()
                .expect("telemetry runs register the RTT histogram");
            assert_eq!(rtt_hist.count, 24);
            assert!(rtt_hist.quantile(0.95).is_some());
        }
    }

    #[test]
    fn idle_eviction_bounds_active_flows_and_loses_none() {
        // 2_000 flows that never terminate, spread 10 ms apart: without
        // eviction every one stays open; with a 1 s idle timeout the
        // engine retires them as the trace clock advances.
        let mut packets = Vec::new();
        for i in 0..2_000u64 {
            packets.push(
                PacketRecord::builder()
                    .src(
                        Ipv4Addr::new(10, (i >> 8) as u8, i as u8, 1),
                        1024 + (i % 30_000) as u16,
                    )
                    .dst(Ipv4Addr::new(192, 0, 2, 1), 80)
                    .timestamp(Timestamp::from_micros(i * 10_000))
                    .flags(TcpFlags::SYN)
                    .build(),
            );
        }
        let bounded = StreamingEngine::builder()
            .shards(2)
            .batch_size(64)
            .idle_timeout(Some(Duration::from_secs(1)))
            .build();
        let (_, with_eviction) = bounded.compress_packets(packets.clone()).unwrap();
        assert_eq!(
            with_eviction.report.flows, 2_000,
            "every flow still reported"
        );
        assert_eq!(with_eviction.report.packets, 2_000);
        assert!(
            with_eviction.peak_active_flows() < 500,
            "peak {} should be bounded by the idle horizon",
            with_eviction.peak_active_flows()
        );
        assert!(with_eviction.evicted_flows > 1_000);

        let unbounded = StreamingEngine::builder().shards(2).batch_size(64).build();
        let (_, without) = unbounded.compress_packets(packets).unwrap();
        assert_eq!(
            without.peak_active_flows(),
            2_000,
            "no eviction → all open at once"
        );
        assert_eq!(without.evicted_flows, 0);
    }
}
