//! The engine's bundle of instrument handles: one [`EngineObs`] per
//! run, built from the configured [`Metrics`] registry and [`Profiler`]
//! so the hot loops never look instruments up by name.
//!
//! Everything here is enum-dispatch cheap when observability is off:
//! handles are no-ops, [`Track::span`] records nothing, and the one
//! `Instant::now()` pair per batch is gated on
//! [`Counter::is_enabled`] — a disabled run pays a branch, not a
//! syscall.

use flowzip_obs::{names, Counter, Gauge, Histogram, Metrics, Profiler, Track};

/// Per-shard instrument handles, moved into the shard's worker loop.
/// The queue-depth gauge is cloned onto the sending side too (router
/// increments on send, shard decrements on receive), so a clean run
/// provably drains every channel back to zero.
#[derive(Debug, Clone)]
pub(crate) struct ShardObs {
    /// `engine.shard.{i}.queue_depth` — batches in flight on this
    /// shard's bounded channel.
    pub(crate) queue_depth: Gauge,
    /// `engine.shard.{i}.active_flows` — open flows in the accumulator.
    pub(crate) active_flows: Gauge,
    /// `engine.shard.{i}.accumulate_ns` — per-batch accumulate time.
    pub(crate) accumulate_ns: Histogram,
    /// `engine.shard.{i}.encode_ns` — finalize/encode time.
    pub(crate) encode_ns: Counter,
    /// Global `engine.packets` (shared handle, all shards add).
    pub(crate) packets: Counter,
    /// Global `engine.batches`.
    pub(crate) batches: Counter,
    /// Global `engine.evicted_flows`.
    pub(crate) evicted: Counter,
    /// Global `telemetry.flows` (recorded at shard finish).
    pub(crate) telemetry_flows: Counter,
    /// Global `telemetry.retransmissions`.
    pub(crate) telemetry_retrans: Counter,
    /// Global `telemetry.rtt_samples`.
    pub(crate) telemetry_rtt_samples: Counter,
    /// Global `telemetry.rtt_us` histogram — one record per finished
    /// flow with a measured RTT, feeding the p95 in the stats one-liner.
    pub(crate) telemetry_rtt_us: Histogram,
    /// This shard's profiler timeline row.
    pub(crate) track: Track,
}

/// The shared routing-side handles: the ticket-wait histogram plus the
/// sending half of every shard's queue-depth gauge.
#[derive(Debug, Clone)]
pub(crate) struct RouteObs {
    /// `engine.router.ticket_wait_ns` — time blocked on the delivery
    /// sequencer (parallel routing only).
    pub(crate) ticket_wait: Histogram,
    /// Queue-depth gauges by shard index, incremented on send.
    pub(crate) queue_depth: Vec<Gauge>,
}

/// One run's full handle bundle. (The container-tail instruments are
/// resolved separately in `outputs_to_bytes` — serialization happens
/// after the worker pool joined, outside any run bundle.)
#[derive(Debug)]
pub(crate) struct EngineObs {
    pub(crate) shards: Vec<ShardObs>,
    pub(crate) route: RouteObs,
}

impl EngineObs {
    /// Registers (or re-resolves — registration is idempotent) every
    /// engine instrument for a `shards`-wide run.
    pub(crate) fn new(metrics: &Metrics, profiler: &Profiler, shards: usize) -> EngineObs {
        let packets = metrics.counter(names::ENGINE_PACKETS);
        let batches = metrics.counter(names::ENGINE_BATCHES);
        let evicted = metrics.counter(names::ENGINE_EVICTED_FLOWS);
        let telemetry_flows = metrics.counter(names::TELEMETRY_FLOWS);
        let telemetry_retrans = metrics.counter(names::TELEMETRY_RETRANSMISSIONS);
        let telemetry_rtt_samples = metrics.counter(names::TELEMETRY_RTT_SAMPLES);
        let telemetry_rtt_us =
            metrics.histogram(names::TELEMETRY_RTT_US, flowzip_obs::RTT_US_BOUNDS);
        let shard_obs = (0..shards)
            .map(|i| ShardObs {
                queue_depth: metrics.gauge(&names::shard_queue_depth(i)),
                active_flows: metrics.gauge(&names::shard_active_flows(i)),
                accumulate_ns: metrics.histogram(
                    &names::shard_accumulate_ns(i),
                    flowzip_obs::DURATION_NS_BOUNDS,
                ),
                encode_ns: metrics.counter(&names::shard_encode_ns(i)),
                packets: packets.clone(),
                batches: batches.clone(),
                evicted: evicted.clone(),
                telemetry_flows: telemetry_flows.clone(),
                telemetry_retrans: telemetry_retrans.clone(),
                telemetry_rtt_samples: telemetry_rtt_samples.clone(),
                telemetry_rtt_us: telemetry_rtt_us.clone(),
                track: profiler.track(&format!("shard-{i}")),
            })
            .collect::<Vec<_>>();
        EngineObs {
            route: RouteObs {
                ticket_wait: metrics.histogram(
                    names::ROUTER_TICKET_WAIT_NS,
                    flowzip_obs::DURATION_NS_BOUNDS,
                ),
                queue_depth: shard_obs.iter().map(|s| s.queue_depth.clone()).collect(),
            },
            shards: shard_obs,
        }
    }
}
