//! Reader-side parallel routing: N routing workers share a
//! [`BatchRead`] source, hash their own batches in parallel, and deliver
//! shard-sticky sub-batches in a globally stable order.
//!
//! ```text
//!             ┌─ router 0 ─ partition ─┐          ┌─▶ shard 0
//! BatchRead ──┼─ router 1 ─ partition ─┼─ ticket ─┼─▶ shard 1   (bounded
//!  (shared)   └─ router R ─ partition ─┘  order   └─▶ shard S    MPSC)
//! ```
//!
//! The serial router (`routing=serial`) hashes every packet on one
//! thread; with 4+ readers and 8+ shards it is the measured bottleneck.
//! Here the expensive per-packet work — flow-key hashing and partition
//! into per-shard buffers — runs on all R workers at once. Only two
//! things stay serialized, both O(1) per *batch*:
//!
//! 1. **The pull.** Workers take the source mutex, receive one whole
//!    decoded batch ([`BatchRead::next_batch`] — for multi-file input
//!    that is a single channel `recv` of a `Vec` a reader thread already
//!    built), and are assigned a monotonically increasing **sequence
//!    ticket** under the same lock.
//! 2. **The delivery.** A sequencer admits workers to the per-shard
//!    channels strictly in ticket order, so shard `s` receives exactly
//!    the packet subsequence it would have received from the serial
//!    router, in the same order — whatever the worker count or OS
//!    schedule.
//!
//! Determinism is therefore structural, not statistical: per-shard
//! arrival order equals serial arrival order, and the shard loop
//! re-chunks arrivals into exact `batch_size` blocks
//! (`Rechunker`), so even idle-eviction scan timing (which keys off
//! batch boundaries) is identical. Byte-identical output is pinned by
//! the `routing_equivalence` proptest battery.
//!
//! Liveness: a shard worker always drains its channel (its only blocking
//! operation is `recv`), so a routing worker blocked on a full shard
//! channel is exactly back-pressure, never deadlock; and every assigned
//! ticket belongs to a live worker that completes its delivery, so
//! ticket waiters always make progress. The first input error is
//! recorded under the source lock — pulls are serialized and sources are
//! fused after an error, so it is *the* first error of the stream, at
//! the same packet position the serial router would have reported.

use crate::obs::RouteObs;
use flowzip_io::BatchRead;
use flowzip_trace::{PacketRecord, TraceError};
use std::sync::mpsc::SyncSender;
use std::sync::{Condvar, Mutex};

/// How packets travel from input to shards. See the
/// [module docs](self) for the parallel topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Routing {
    /// One dedicated router thread hashes and dispatches every packet —
    /// the original topology, kept as a fallback for single-core hosts
    /// and as the reference the equivalence suite compares against.
    Serial,
    /// Reader-side routing (the default): routing workers pull whole
    /// batches from the shared source, hash in parallel, and deliver to
    /// per-shard channels in sequence-ticket order.
    #[default]
    Parallel,
}

impl Routing {
    /// Parses the CLI spelling (`serial` | `parallel`).
    ///
    /// # Errors
    ///
    /// A descriptive message naming the accepted spellings.
    pub fn parse(name: &str) -> Result<Routing, String> {
        match name {
            "serial" => Ok(Routing::Serial),
            "parallel" => Ok(Routing::Parallel),
            other => Err(format!(
                "unknown routing `{other}` (want serial or parallel)"
            )),
        }
    }
}

impl std::fmt::Display for Routing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Routing::Serial => write!(f, "serial"),
            Routing::Parallel => write!(f, "parallel"),
        }
    }
}

/// Which shard owns a packet: a cheap direction-free FNV-1a over the
/// endpoint pair, so both directions of a conversation land together.
/// Under serial routing this runs on the single router thread for every
/// packet — it must cost far less than the per-packet work it fans out
/// (SipHash here halves router throughput for no distributional
/// benefit); under parallel routing it is exactly the work that now runs
/// on all routing workers at once.
pub(crate) fn shard_of(p: &PacketRecord, shards: usize) -> usize {
    let t = p.tuple();
    let a = (u32::from(t.src_ip), t.src_port);
    let b = (u32::from(t.dst_ip), t.dst_port);
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in [
        lo.0 as u64,
        lo.1 as u64,
        hi.0 as u64,
        hi.1 as u64,
        t.protocol.number() as u64,
    ] {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// Adapts any fallible packet iterator to [`BatchRead`] by chunking —
/// the bridge that lets `compress_stream`'s generic iterator input run
/// under parallel routing. On an input error the packets decoded before
/// it are yielded first (their own batch), then the error, matching
/// [`MultiFileIter`](flowzip_io::MultiFileIter)'s native behavior.
pub(crate) struct IterBatches<I> {
    input: I,
    batch_size: usize,
    pending_err: Option<TraceError>,
    done: bool,
}

impl<I> IterBatches<I> {
    pub(crate) fn new(input: I, batch_size: usize) -> IterBatches<I> {
        IterBatches {
            input,
            batch_size: batch_size.max(1),
            pending_err: None,
            done: false,
        }
    }
}

impl<I: Iterator<Item = Result<PacketRecord, TraceError>>> BatchRead for IterBatches<I> {
    fn next_batch(&mut self) -> Option<Result<Vec<PacketRecord>, TraceError>> {
        if self.done {
            return None;
        }
        if let Some(e) = self.pending_err.take() {
            self.done = true;
            return Some(Err(e));
        }
        let mut batch = Vec::with_capacity(self.batch_size);
        while batch.len() < self.batch_size {
            match self.input.next() {
                Some(Ok(p)) => batch.push(p),
                Some(Err(e)) => {
                    if batch.is_empty() {
                        self.done = true;
                        return Some(Err(e));
                    }
                    self.pending_err = Some(e);
                    return Some(Ok(batch));
                }
                None => {
                    self.done = true;
                    if batch.is_empty() {
                        return None;
                    }
                    return Some(Ok(batch));
                }
            }
        }
        Some(Ok(batch))
    }
}

/// The inverse bridge: a [`BatchRead`] as a per-packet iterator, for the
/// serial router path consuming a batch-native source.
pub(crate) struct BatchPackets<B> {
    source: B,
    batch: std::vec::IntoIter<PacketRecord>,
}

impl<B> BatchPackets<B> {
    pub(crate) fn new(source: B) -> BatchPackets<B> {
        BatchPackets {
            source,
            batch: Vec::new().into_iter(),
        }
    }
}

impl<B: BatchRead> Iterator for BatchPackets<B> {
    type Item = Result<PacketRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(p) = self.batch.next() {
                return Some(Ok(p));
            }
            match self.source.next_batch()? {
                Ok(batch) => self.batch = batch.into_iter(),
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

/// Admits routing workers to the shard channels strictly in ticket
/// order: `wait_turn(t)` blocks until every ticket before `t` has been
/// delivered and `advance`d. Tickets are assigned under the source lock,
/// so "ticket order" is "pull order" is "stream order".
struct Sequencer {
    turn: Mutex<u64>,
    ready: Condvar,
}

impl Sequencer {
    fn new() -> Sequencer {
        Sequencer {
            turn: Mutex::new(0),
            ready: Condvar::new(),
        }
    }

    fn wait_turn(&self, ticket: u64) {
        let mut turn = self.turn.lock().unwrap_or_else(|e| e.into_inner());
        while *turn != ticket {
            turn = self.ready.wait(turn).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn advance(&self) {
        let mut turn = self.turn.lock().unwrap_or_else(|e| e.into_inner());
        *turn += 1;
        drop(turn);
        self.ready.notify_all();
    }
}

/// The shared pull side of the router pool: the source, the ticket
/// counter and the first-error slot, all under one mutex so a pull and
/// its ticket are atomic.
struct SharedSource<B> {
    source: B,
    next_ticket: u64,
    first_err: Option<TraceError>,
    done: bool,
}

impl<B: BatchRead> SharedSource<B> {
    fn pull(&mut self) -> Option<(u64, Vec<PacketRecord>)> {
        if self.done {
            return None;
        }
        match self.source.next_batch() {
            Some(Ok(batch)) => {
                let ticket = self.next_ticket;
                self.next_ticket += 1;
                Some((ticket, batch))
            }
            Some(Err(e)) => {
                // Pulls are serialized and sources are fused, so this is
                // the stream's first error; stop every worker.
                self.first_err = Some(e);
                self.done = true;
                None
            }
            None => {
                self.done = true;
                None
            }
        }
    }
}

/// The distribution fabric one parallel run shares: the pullable source,
/// the delivery sequencer and the shard senders. Workers borrow it from
/// the engine's stack across the scoped pool.
pub(crate) struct RouteFabric<B> {
    shared: Mutex<SharedSource<B>>,
    sequencer: Sequencer,
    shards: usize,
    obs: RouteObs,
}

impl<B: BatchRead> RouteFabric<B> {
    pub(crate) fn new(source: B, shards: usize, obs: RouteObs) -> RouteFabric<B> {
        RouteFabric {
            shared: Mutex::new(SharedSource {
                source,
                next_ticket: 0,
                first_err: None,
                done: false,
            }),
            sequencer: Sequencer::new(),
            shards,
            obs,
        }
    }

    /// One routing worker's whole job: pull → partition (in parallel
    /// with the other workers) → deliver in ticket order, until the
    /// source is exhausted or errored. Each worker owns its own clones
    /// of the shard senders; the channels close when the last worker
    /// returns and drops them.
    pub(crate) fn run_router(&self, senders: Vec<SyncSender<Vec<PacketRecord>>>) {
        loop {
            let pulled = {
                let mut shared = self.shared.lock().unwrap_or_else(|e| e.into_inner());
                shared.pull()
            };
            let Some((ticket, batch)) = pulled else {
                return;
            };
            // The per-packet work, outside every lock.
            let mut parts: Vec<Vec<PacketRecord>> = (0..self.shards).map(|_| Vec::new()).collect();
            for p in batch {
                let s = shard_of(&p, self.shards);
                parts[s].push(p);
            }
            let wait = self.obs.ticket_wait.start();
            self.sequencer.wait_turn(ticket);
            self.obs.ticket_wait.record_since(wait);
            for (s, part) in parts.into_iter().enumerate() {
                if !part.is_empty() {
                    // A send can only fail if the shard died; the pool's
                    // join re-raises its panic after delivery unwinds.
                    if senders[s].send(part).is_ok() {
                        self.obs.queue_depth[s].inc();
                    }
                }
            }
            self.sequencer.advance();
        }
    }

    /// Consumes the fabric after the pool joined, surfacing the first
    /// input error (if any).
    pub(crate) fn into_result(self) -> Result<(), TraceError> {
        let shared = self.shared.into_inner().unwrap_or_else(|e| e.into_inner());
        match shared.first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Re-chunks a shard's arrival stream into exact `batch_size` blocks so
/// the accumulator sees the very same `process_batch` boundaries the
/// serial router produces — sub-batch sizes on the wire vary with what
/// each pulled batch happened to hash here, but eviction-scan timing
/// keys off batch boundaries, so boundaries must not.
pub(crate) struct Rechunker {
    pending: Vec<PacketRecord>,
    batch_size: usize,
}

impl Rechunker {
    pub(crate) fn new(batch_size: usize) -> Rechunker {
        Rechunker {
            pending: Vec::new(),
            batch_size: batch_size.max(1),
        }
    }

    /// Absorbs an arrival, handing every completed `batch_size` block to
    /// `process`.
    pub(crate) fn push(
        &mut self,
        mut arrival: Vec<PacketRecord>,
        mut process: impl FnMut(&[PacketRecord]),
    ) {
        if self.pending.is_empty() && arrival.len() == self.batch_size {
            // Boundaries already aligned (the common case when one pulled
            // batch hashes entirely here): no copy, no re-buffer.
            process(&arrival);
            return;
        }
        self.pending.append(&mut arrival);
        while self.pending.len() >= self.batch_size {
            let rest = self.pending.split_off(self.batch_size);
            process(&self.pending);
            self.pending = rest;
        }
    }

    /// Hands the final partial block (if any) to `process`.
    pub(crate) fn finish(self, mut process: impl FnMut(&[PacketRecord])) {
        if !self.pending.is_empty() {
            process(&self.pending);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowzip_trace::prelude::*;

    fn pkt(port: u16, us: u64) -> PacketRecord {
        PacketRecord::builder()
            .src(Ipv4Addr::new(10, 0, 0, 1), port)
            .dst(Ipv4Addr::new(192, 0, 2, 9), 80)
            .timestamp(Timestamp::from_micros(us))
            .flags(TcpFlags::SYN)
            .build()
    }

    #[test]
    fn routing_parses_and_displays_both_spellings() {
        assert_eq!(Routing::parse("serial").unwrap(), Routing::Serial);
        assert_eq!(Routing::parse("parallel").unwrap(), Routing::Parallel);
        assert_eq!(Routing::Serial.to_string(), "serial");
        assert_eq!(Routing::Parallel.to_string(), "parallel");
        assert!(Routing::parse("fast").unwrap_err().contains("fast"));
        assert_eq!(Routing::default(), Routing::Parallel);
    }

    #[test]
    fn iter_batches_chunks_and_yields_trailing_partial() {
        let packets: Vec<_> = (0..10u64).map(|i| pkt(4000 + i as u16, i)).collect();
        let mut b = IterBatches::new(packets.iter().cloned().map(Ok), 4);
        assert_eq!(b.next_batch().unwrap().unwrap().len(), 4);
        assert_eq!(b.next_batch().unwrap().unwrap().len(), 4);
        assert_eq!(b.next_batch().unwrap().unwrap(), packets[8..].to_vec());
        assert!(b.next_batch().is_none());
        assert!(b.next_batch().is_none(), "fused");
    }

    #[test]
    fn iter_batches_yields_decoded_packets_before_the_error() {
        let input = vec![
            Ok(pkt(4000, 0)),
            Ok(pkt(4001, 1)),
            Err(TraceError::TruncatedRecord { got: 3, need: 44 }),
            Ok(pkt(4002, 2)),
        ];
        let mut b = IterBatches::new(input.into_iter(), 8);
        assert_eq!(b.next_batch().unwrap().unwrap().len(), 2);
        assert!(matches!(
            b.next_batch().unwrap().unwrap_err(),
            TraceError::TruncatedRecord { got: 3, need: 44 }
        ));
        assert!(b.next_batch().is_none(), "fused after error");
    }

    #[test]
    fn iter_batches_leading_error_comes_through_directly() {
        let input = vec![Err(TraceError::InvalidTrace("bad magic".into()))];
        let mut b = IterBatches::new(input.into_iter(), 8);
        assert!(b.next_batch().unwrap().is_err());
        assert!(b.next_batch().is_none());
    }

    #[test]
    fn batch_packets_round_trips_iter_batches() {
        let packets: Vec<_> = (0..23u64).map(|i| pkt(5000 + i as u16, i)).collect();
        let got: Vec<_> = BatchPackets::new(IterBatches::new(packets.iter().cloned().map(Ok), 5))
            .map(|p| p.unwrap())
            .collect();
        assert_eq!(got, packets);
    }

    #[test]
    fn rechunker_reproduces_serial_batch_boundaries() {
        // Arrivals of ragged sizes; blocks must come out as exact 4s
        // plus one trailing partial, regardless.
        let packets: Vec<_> = (0..11u64).map(|i| pkt(6000 + i as u16, i)).collect();
        let mut chunks: Vec<Vec<PacketRecord>> = Vec::new();
        let mut rc = Rechunker::new(4);
        for arrival in [
            &packets[0..1],
            &packets[1..6],
            &packets[6..9],
            &packets[9..11],
        ] {
            rc.push(arrival.to_vec(), |c| chunks.push(c.to_vec()));
        }
        rc.finish(|c| chunks.push(c.to_vec()));
        assert_eq!(
            chunks.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![4, 4, 3]
        );
        assert_eq!(chunks.concat(), packets);
    }

    #[test]
    fn sequencer_orders_concurrent_workers() {
        let seq = Sequencer::new();
        let order = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            // Spawn in reverse ticket order to force real waiting.
            for ticket in (0..8u64).rev() {
                let seq = &seq;
                let order = &order;
                s.spawn(move || {
                    seq.wait_turn(ticket);
                    order.lock().unwrap().push(ticket);
                    seq.advance();
                });
            }
        });
        assert_eq!(*order.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }
}
