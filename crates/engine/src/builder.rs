//! Engine configuration: shard count, batching, back-pressure and the
//! idle-flow eviction policy.

use crate::engine::StreamingEngine;
use crate::route::Routing;
use flowzip_core::{ArchiveFormat, Params};
use flowzip_obs::{Metrics, Profiler};
use flowzip_trace::Duration;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Cooperative cancellation for an in-flight run: when the shared flag
/// flips, the engine stops pulling input at the next pull point and runs
/// its normal end-of-input drain — every flow routed so far is finalized
/// and the run returns a **valid partial archive**, exactly as if the
/// stream had ended there. This is the mechanism behind graceful SIGINT
/// (one-shot CLI runs finalize instead of truncating) and `flowzip
/// serve`'s clean-shutdown final flush.
///
/// The default ([`CancelFlag::none`]) never cancels and costs the pull
/// path one predictable branch. Two flags compare equal when both are
/// empty or both share the same underlying atomic.
#[derive(Clone, Default)]
pub struct CancelFlag(Option<Arc<AtomicBool>>);

impl CancelFlag {
    /// The inert flag: the run only ends when its input does.
    pub fn none() -> CancelFlag {
        CancelFlag(None)
    }

    /// Wraps a shared stop flag (e.g. one a signal handler sets).
    pub fn new(flag: Arc<AtomicBool>) -> CancelFlag {
        CancelFlag(Some(flag))
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.as_ref().is_some_and(|f| f.load(Ordering::Relaxed))
    }
}

impl PartialEq for CancelFlag {
    fn eq(&self, other: &CancelFlag) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl std::fmt::Debug for CancelFlag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => f.write_str("CancelFlag::none"),
            Some(flag) => write!(f, "CancelFlag({})", flag.load(Ordering::Relaxed)),
        }
    }
}

/// Resolved engine configuration (what [`EngineBuilder::build`] produces).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Compression parameters shared by every shard.
    pub params: Params,
    /// Container format [`StreamingEngine::compress_stream_to_bytes`]
    /// writes. v2 (the default) lets every shard serialize its own
    /// archive section in parallel; v1 keeps the original single-blob
    /// layout with its serial O(trace) serialization tail.
    pub format: ArchiveFormat,
    /// Worker threads; flows are partitioned across them by flow-key
    /// hash. One shard reproduces batch output byte-for-byte.
    pub shards: usize,
    /// Packets per cross-thread batch. Larger batches amortize channel
    /// overhead; smaller ones reduce latency and peak buffering.
    pub batch_size: usize,
    /// Bounded in-flight batches per shard channel — the back-pressure
    /// knob that caps reader run-ahead (peak buffered packets is
    /// `shards · channel_capacity · batch_size` plus one partial batch).
    pub channel_capacity: usize,
    /// Evict flows idle longer than this (in *trace* time). `None`
    /// disables eviction: memory then grows with the number of flows left
    /// open by the trace, exactly like the batch compressor.
    pub idle_timeout: Option<Duration>,
    /// How packets reach the shards: [`Routing::Parallel`] (the default)
    /// hashes on N routing workers and delivers in sequence-ticket order;
    /// [`Routing::Serial`] keeps the original dedicated router thread.
    /// Output is byte-identical either way (pinned by the
    /// routing-equivalence proptests).
    pub routing: Routing,
    /// Routing workers under [`Routing::Parallel`] (clamped ≥ 1; ignored
    /// by serial routing). For file input this is naturally the reader
    /// count — each worker drains whole decoded batches and hashes them
    /// itself.
    pub routers: usize,
    /// Derive per-flow TCP telemetry (RTT, retransmissions, idle/active
    /// time) inline during accumulation and, with the v2 container,
    /// append the rev 2.2 `FZT1` side-section. Off by default; turning
    /// it on never changes the archive's non-telemetry bytes (the block
    /// is a pure suffix).
    pub telemetry: bool,
    /// Metrics registry every run reports into
    /// ([`Metrics::disabled`] by default — instrument handles are then
    /// enum-dispatch no-ops and the hot paths never read a clock).
    pub metrics: Metrics,
    /// Span-timing recorder for chrome://tracing dumps
    /// ([`Profiler::disabled`] by default).
    pub profiler: Profiler,
    /// Cooperative cancellation: when the flag flips, the run stops
    /// pulling input and drains what it has into a valid partial archive
    /// ([`CancelFlag::none`] by default — runs end with their input).
    pub cancel: CancelFlag,
}

impl EngineConfig {
    fn validated(mut self) -> EngineConfig {
        self.shards = self.shards.max(1);
        self.batch_size = self.batch_size.max(1);
        self.channel_capacity = self.channel_capacity.max(1);
        self.routers = self.routers.max(1);
        self
    }

    /// Checks every knob, returning a descriptive error for values that
    /// would hang or starve the pipeline instead of clamping them.
    fn checked(self) -> Result<EngineConfig, ConfigError> {
        if self.shards == 0 {
            return Err(ConfigError(
                "shards must be ≥ 1 (got 0; zero workers would hang the router)".to_string(),
            ));
        }
        if self.batch_size == 0 {
            return Err(ConfigError(
                "batch_size must be ≥ 1 (got 0; empty batches would never hand packets over)"
                    .to_string(),
            ));
        }
        if self.channel_capacity == 0 {
            return Err(ConfigError(
                "channel_capacity must be ≥ 1 (got 0; a zero-slot channel would deadlock)"
                    .to_string(),
            ));
        }
        if self.routers == 0 {
            return Err(ConfigError(
                "routers must be ≥ 1 (got 0; zero routing workers would never deliver a packet)"
                    .to_string(),
            ));
        }
        Ok(self)
    }
}

/// A rejected engine configuration, with a human-readable description of
/// the offending knob (what [`EngineBuilder::try_build`] returns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineBuilder::new().config
    }
}

/// Fluent builder for a [`StreamingEngine`].
///
/// ```
/// use flowzip_engine::StreamingEngine;
/// use flowzip_trace::Duration;
///
/// let engine = StreamingEngine::builder()
///     .shards(4)
///     .batch_size(1024)
///     .channel_capacity(8)
///     .idle_timeout(Some(Duration::from_secs(60)))
///     .build();
/// assert_eq!(engine.config().shards, 4);
/// ```
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    config: EngineConfig,
}

impl EngineBuilder {
    /// Starts from the defaults: paper parameters, one shard per
    /// available CPU (capped at 8), 1024-packet batches, 4 in-flight
    /// batches per shard, no idle eviction, parallel reader-side routing
    /// with one routing worker per available CPU (capped at 4).
    pub fn new() -> EngineBuilder {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        EngineBuilder {
            config: EngineConfig {
                params: Params::paper(),
                format: ArchiveFormat::V2,
                shards: cpus.min(8),
                batch_size: 1024,
                channel_capacity: 4,
                idle_timeout: None,
                routing: Routing::Parallel,
                routers: cpus.min(4),
                telemetry: false,
                metrics: Metrics::disabled(),
                profiler: Profiler::disabled(),
                cancel: CancelFlag::none(),
            },
        }
    }

    /// Container format for serialized output (default: v2).
    pub fn format(mut self, format: ArchiveFormat) -> EngineBuilder {
        self.config.format = format;
        self
    }

    /// Compression parameters (default: [`Params::paper`]).
    pub fn params(mut self, params: Params) -> EngineBuilder {
        self.config.params = params;
        self
    }

    /// Number of worker shards (clamped to ≥ 1).
    pub fn shards(mut self, shards: usize) -> EngineBuilder {
        self.config.shards = shards;
        self
    }

    /// Packets per cross-thread batch (clamped to ≥ 1).
    pub fn batch_size(mut self, batch_size: usize) -> EngineBuilder {
        self.config.batch_size = batch_size;
        self
    }

    /// Bounded in-flight batches per shard channel (clamped to ≥ 1).
    pub fn channel_capacity(mut self, capacity: usize) -> EngineBuilder {
        self.config.channel_capacity = capacity;
        self
    }

    /// Idle-flow eviction horizon in trace time; `None` disables.
    pub fn idle_timeout(mut self, timeout: Option<Duration>) -> EngineBuilder {
        self.config.idle_timeout = timeout;
        self
    }

    /// Routing topology (default: [`Routing::Parallel`]).
    ///
    /// Under parallel routing, [`EngineBuilder::routers`] workers pull
    /// whole decoded batches from the input, hash their own packets
    /// concurrently, and deliver shard-sticky sub-batches in a globally
    /// stable sequence-ticket order — so every shard still sees exactly
    /// the packet order the dedicated serial router would have sent it,
    /// and output stays **byte-identical** across the two topologies
    /// (pinned by the routing-equivalence proptests). `Routing::Serial`
    /// keeps the original one-router-thread fallback: the right choice
    /// on single-core hosts, where extra routing workers only add
    /// scheduling overhead, and the reference topology for debugging a
    /// suspected routing bug.
    pub fn routing(mut self, routing: Routing) -> EngineBuilder {
        self.config.routing = routing;
        self
    }

    /// Routing workers under [`Routing::Parallel`] (clamped ≥ 1; ignored
    /// by serial routing). File ingest typically sets this to the reader
    /// count — the threads that decode the batches are the natural ones
    /// to hash them.
    pub fn routers(mut self, routers: usize) -> EngineBuilder {
        self.config.routers = routers;
        self
    }

    /// Per-flow TCP telemetry derivation (default: off). With the v2
    /// container the per-section rows persist as the rev 2.2 `FZT1`
    /// side-section (and feed the `telemetry.*` counters); the v1
    /// single-blob format has nowhere to carry the rows, so the knob is
    /// only meaningful together with [`ArchiveFormat::V2`].
    pub fn telemetry(mut self, telemetry: bool) -> EngineBuilder {
        self.config.telemetry = telemetry;
        self
    }

    /// Metrics registry runs report into (default:
    /// [`Metrics::disabled`], which makes every instrument a no-op).
    /// Pass [`Metrics::enabled`] and snapshot it after (or during — it
    /// is lock-free to read) a run.
    pub fn metrics(mut self, metrics: Metrics) -> EngineBuilder {
        self.config.metrics = metrics;
        self
    }

    /// Span-timing recorder for chrome://tracing dumps (default:
    /// [`Profiler::disabled`]). Each shard and routing worker gets its
    /// own timeline track.
    pub fn profiler(mut self, profiler: Profiler) -> EngineBuilder {
        self.config.profiler = profiler;
        self
    }

    /// Cooperative cancellation flag (default: none). When `flag` flips
    /// to `true` mid-run, the engine stops pulling input at the next
    /// pull point and drains everything routed so far through the normal
    /// end-of-stream path — the run returns a **valid partial archive**
    /// rather than erroring out. Signal handlers and `flowzip serve`'s
    /// shutdown path share one flag across ingest and engine.
    pub fn cancel_flag(mut self, flag: Arc<AtomicBool>) -> EngineBuilder {
        self.config.cancel = CancelFlag::new(flag);
        self
    }

    /// Finalizes the configuration, silently clamping zero-valued knobs
    /// up to 1. Prefer [`EngineBuilder::try_build`] where a zero is more
    /// likely a caller bug than a request for the minimum.
    pub fn build(self) -> StreamingEngine {
        StreamingEngine::new(self.config.validated())
    }

    /// Finalizes the configuration, rejecting nonsense (`shards == 0`,
    /// `batch_size == 0`, `channel_capacity == 0`) with a descriptive
    /// [`ConfigError`] instead of clamping — the validating entry point
    /// `flowzip-pipeline` builds engines through.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] naming the offending knob and why it is invalid.
    pub fn try_build(self) -> Result<StreamingEngine, ConfigError> {
        Ok(StreamingEngine::new(self.config.checked()?))
    }
}

impl Default for EngineBuilder {
    fn default() -> EngineBuilder {
        EngineBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = EngineConfig::default();
        assert!(c.shards >= 1);
        assert!(c.batch_size >= 1);
        assert!(c.channel_capacity >= 1);
        assert!(c.routers >= 1);
        assert_eq!(c.idle_timeout, None);
        assert_eq!(c.params, Params::paper());
        assert_eq!(c.format, ArchiveFormat::V2);
        assert_eq!(c.routing, Routing::Parallel);
        assert!(!c.telemetry);
    }

    #[test]
    fn zero_knobs_clamp_to_one() {
        let e = StreamingEngine::builder()
            .shards(0)
            .batch_size(0)
            .channel_capacity(0)
            .routers(0)
            .build();
        assert_eq!(e.config().shards, 1);
        assert_eq!(e.config().batch_size, 1);
        assert_eq!(e.config().channel_capacity, 1);
        assert_eq!(e.config().routers, 1);
    }

    #[test]
    fn try_build_rejects_each_zero_knob_descriptively() {
        let err = StreamingEngine::builder()
            .shards(0)
            .try_build()
            .unwrap_err();
        assert!(err.to_string().contains("shards must be ≥ 1"), "{err}");

        let err = StreamingEngine::builder()
            .batch_size(0)
            .try_build()
            .unwrap_err();
        assert!(err.to_string().contains("batch_size must be ≥ 1"), "{err}");

        let err = StreamingEngine::builder()
            .channel_capacity(0)
            .try_build()
            .unwrap_err();
        assert!(
            err.to_string().contains("channel_capacity must be ≥ 1"),
            "{err}"
        );

        let err = StreamingEngine::builder()
            .routers(0)
            .try_build()
            .unwrap_err();
        assert!(err.to_string().contains("routers must be ≥ 1"), "{err}");

        // Sane configurations pass through unchanged.
        let engine = StreamingEngine::builder()
            .shards(3)
            .batch_size(64)
            .channel_capacity(2)
            .try_build()
            .unwrap();
        assert_eq!(engine.config().shards, 3);
    }

    #[test]
    fn builder_sets_every_knob() {
        let e = StreamingEngine::builder()
            .params(Params {
                similarity: 0.05,
                ..Params::paper()
            })
            .shards(3)
            .batch_size(77)
            .channel_capacity(2)
            .idle_timeout(Some(Duration::from_secs(30)))
            .format(ArchiveFormat::V1)
            .routing(Routing::Serial)
            .routers(5)
            .telemetry(true)
            .build();
        assert_eq!(e.config().format, ArchiveFormat::V1);
        assert!(e.config().telemetry);
        assert_eq!(e.config().shards, 3);
        assert_eq!(e.config().batch_size, 77);
        assert_eq!(e.config().channel_capacity, 2);
        assert_eq!(e.config().idle_timeout, Some(Duration::from_secs(30)));
        assert_eq!(e.config().routing, Routing::Serial);
        assert_eq!(e.config().routers, 5);
        assert!((e.config().params.similarity - 0.05).abs() < 1e-12);
    }
}
