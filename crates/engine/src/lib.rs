//! `flowzip-engine` — a sharded, bounded-memory **streaming** compression
//! pipeline over the §3 algorithm.
//!
//! The core [`Compressor`](flowzip_core::Compressor) is batch-only: it
//! wants the whole [`Trace`](flowzip_trace::Trace) in memory. This crate
//! turns the same algorithm into an online pipeline that handles traces
//! far larger than RAM:
//!
//! * **Incremental input** — packets arrive from any
//!   `Iterator<Item = Result<PacketRecord, TraceError>>`, e.g. the
//!   streaming [`TshReader`](flowzip_trace::TshReader) /
//!   [`PcapReader`](flowzip_trace::PcapReader). Pluggable
//!   [`InputSource`](flowzip_io::InputSource)s go through
//!   [`StreamingEngine::compress_source`]: a prefetched
//!   [`FileSource`](flowzip_io::FileSource) or a parallel-reader
//!   [`MultiFileSource`](flowzip_io::MultiFileSource) overlaps disk and
//!   decode with compute, and the [`EngineReport`] then splits
//!   wall-clock into read-wait vs. compute.
//! * **Flow sharding** — each packet is routed by the hash of its
//!   canonical flow key across N worker threads, so every packet of a
//!   flow lands on the same shard and per-flow state never needs locks.
//!   Packets travel in batches over bounded channels to amortize send
//!   overhead and to apply back-pressure to the reader.
//! * **Parallel routing** — by default ([`Routing::Parallel`]) the
//!   flow-key hashing itself runs on a pool of routing workers that
//!   share a batch-granular source
//!   ([`BatchRead`](flowzip_io::BatchRead)) and deliver in a stable
//!   sequence-ticket order, removing the dedicated-router-thread
//!   ceiling; `Routing::Serial` keeps the original topology, and both
//!   produce **byte-identical** archives (see [`route`]).
//! * **Bounded memory** — each shard runs its own
//!   [`FlowAccumulator`](flowzip_core::FlowAccumulator) with idle-flow
//!   timeout eviction and drains finished flows into a shard-local
//!   [`TemplateStore`](flowzip_core::TemplateStore) as they close, so
//!   resident state is proportional to flow *concurrency*, not trace
//!   length.
//! * **Exact merge** — per-shard stores fold into one dataset via
//!   [`TemplateStore::merge`](flowzip_core::TemplateStore::merge), which
//!   re-clusters foreign centers under the same Eq. 4 `d_sim` rule, so the
//!   merged archive is a valid `CompressedTrace` indistinguishable in
//!   structure from batch output.
//!
//! With one shard and no idle timeout the engine is *byte-identical* to
//! the batch compressor; with many shards the per-flow datasets stay
//! exactly equal and only the greedy clustering may differ slightly (the
//! equivalence property tests pin both).
//!
//! # Example
//!
//! The two primitive entry points are
//! [`StreamingEngine::compress_stream`] (in-memory archive + report) and
//! [`StreamingEngine::compress_stream_to_bytes`] (serialized container).
//! Applications normally sit one level up, on `flowzip-pipeline`'s
//! `Pipeline::compress()` session API, which routes between this engine
//! and the batch compressor; the old per-input convenience wrappers
//! (`compress_trace`, `compress_packets`, `compress_source`, …) remain as
//! deprecated shims over the primitives.
//!
//! ```
//! use flowzip_engine::StreamingEngine;
//! use flowzip_traffic::web::{WebTrafficConfig, WebTrafficGenerator};
//!
//! let trace = WebTrafficGenerator::new(
//!     WebTrafficConfig { flows: 200, ..Default::default() }, 42).generate();
//!
//! let engine = StreamingEngine::builder().shards(2).build();
//! let (archive, report) = engine
//!     .compress_stream(trace.iter().cloned().map(Ok))
//!     .unwrap();
//! assert_eq!(report.report.packets, trace.len() as u64);
//! assert!(archive.validate().is_ok());
//! ```

pub mod builder;
pub mod engine;
mod obs;
pub mod report;
pub mod route;

pub use builder::{CancelFlag, ConfigError, EngineBuilder, EngineConfig};
pub use engine::StreamingEngine;
pub use report::EngineReport;
pub use route::Routing;

// Re-exported so engine embedders can enable observability without a
// direct `flowzip-obs` dependency.
pub use flowzip_obs::{Metrics, Profiler};
