//! Aggregate engine report: the batch-compatible [`CompressionReport`]
//! plus the throughput and memory figures only a streaming run can know.

use flowzip_core::CompressionReport;
use std::fmt;

/// What a streaming run did: the §3/§5 compression report, aggregated
/// across shards, plus wall-clock throughput and memory high-water marks.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// The batch-compatible compression report (packets, flows, clusters,
    /// sizes, ratios — and `peak_active_flows` summed over shards).
    pub report: CompressionReport,
    /// Worker shards the run used.
    pub shards: usize,
    /// Wall-clock seconds from first packet to merged archive.
    pub elapsed_secs: f64,
    /// Packets consumed per wall-clock second.
    pub packets_per_sec: f64,
    /// Input throughput in TSH megabytes (44 B/packet) per second.
    pub mb_per_sec: f64,
    /// Flows force-closed by idle-timeout eviction.
    pub evicted_flows: u64,
    /// Wall-clock seconds of the *serial* tail: the whole
    /// single-threaded shard merge + time-seq sort + encode for v1
    /// output, but only store merge + index assembly + payload
    /// concatenation for v2 (per-shard payload encoding happens on the
    /// worker threads and overlaps compute). Zero for in-memory runs
    /// that never serialized.
    pub serialize_secs: f64,
    /// Archive sections written (v2: one per shard; v1: 1; in-memory: 0).
    pub sections: usize,
    /// Serialized archive size in bytes (0 for in-memory runs).
    pub archive_bytes: u64,
}

impl EngineReport {
    /// Per-shard open-flow peaks, summed — an upper bound on true
    /// simultaneous concurrency (shards may peak at different moments),
    /// and the figure idle-timeout eviction exists to bound. Forwards
    /// to [`CompressionReport::peak_active_flows`].
    pub fn peak_active_flows(&self) -> u64 {
        self.report.peak_active_flows
    }
}

impl fmt::Display for EngineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}; {} shards, {:.2}s, {:.0} packets/s ({:.2} MB/s), peak {} active flows, {} evicted",
            self.report,
            self.shards,
            self.elapsed_secs,
            self.packets_per_sec,
            self.mb_per_sec,
            self.peak_active_flows(),
            self.evicted_flows
        )?;
        if self.sections > 0 {
            write!(
                f,
                "; {} section archive, {} B, serial tail {:.4}s",
                self.sections, self.archive_bytes, self.serialize_secs
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowzip_core::DatasetSizes;

    #[test]
    fn display_mentions_throughput_and_peak() {
        let r = EngineReport {
            report: CompressionReport {
                packets: 10,
                flows: 2,
                short_flows: 2,
                long_flows: 0,
                matched_flows: 1,
                clusters: 1,
                addresses: 1,
                peak_active_flows: 2,
                sizes: DatasetSizes::default(),
                tsh_bytes: 440,
                ratio_vs_tsh: 0.03,
                ratio_vs_headers: 0.04,
            },
            shards: 4,
            elapsed_secs: 0.5,
            packets_per_sec: 20.0,
            mb_per_sec: 0.00088,
            evicted_flows: 0,
            serialize_secs: 0.0,
            sections: 0,
            archive_bytes: 0,
        };
        let s = r.to_string();
        assert!(s.contains("4 shards"));
        assert!(s.contains("packets/s"));
        assert!(s.contains("peak 2 active flows"));
        // In-memory runs don't claim an archive...
        assert!(!s.contains("section archive"));
        // ...serialized ones do.
        let mut ser = r.clone();
        ser.sections = 4;
        ser.archive_bytes = 1234;
        ser.serialize_secs = 0.001;
        let s = ser.to_string();
        assert!(s.contains("4 section archive"));
        assert!(s.contains("serial tail"));
    }
}
