//! Aggregate engine report: the batch-compatible [`CompressionReport`]
//! plus the throughput and memory figures only a streaming run can know.

use crate::route::Routing;
use flowzip_core::CompressionReport;
use flowzip_obs::json::JsonObject;
use std::fmt;

/// What a streaming run did: the §3/§5 compression report, aggregated
/// across shards, plus wall-clock throughput and memory high-water marks.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// The batch-compatible compression report (packets, flows, clusters,
    /// sizes, ratios — and `peak_active_flows` summed over shards).
    pub report: CompressionReport,
    /// Worker shards the run used.
    pub shards: usize,
    /// Routing topology the run used (serial router thread vs.
    /// reader-side parallel routing — output is identical either way).
    pub routing: Routing,
    /// Routing workers the run used (1 under serial routing).
    pub routers: usize,
    /// Wall-clock seconds from first packet to merged archive.
    pub elapsed_secs: f64,
    /// Packets consumed per wall-clock second.
    pub packets_per_sec: f64,
    /// Input throughput in TSH megabytes (44 B/packet) per second.
    pub mb_per_sec: f64,
    /// Flows force-closed by idle-timeout eviction.
    pub evicted_flows: u64,
    /// Wall-clock seconds the pipeline spent *waiting on input* — blocked
    /// `read()` calls for plain file input, hand-off-channel waits for
    /// prefetched/multi-file sources (whose disk time overlaps compute
    /// and deliberately does not count). Zero for in-memory runs and for
    /// raw-iterator entry points that carry no
    /// [`IoStats`](flowzip_io::IoStats) handle.
    pub read_wait_secs: f64,
    /// `elapsed_secs − read_wait_secs`, clamped at zero: the wall-clock
    /// actually spent parsing, routing and compressing. When `read_wait`
    /// dwarfs `compute`, the run is I/O-bound — add readers or prefetch;
    /// the other way round, it is compute-bound — add shards.
    pub compute_secs: f64,
    /// Wall-clock seconds of the *serial* tail: the whole
    /// single-threaded shard merge + time-seq sort + encode for v1
    /// output, but only store merge + index assembly + payload
    /// concatenation for v2 (per-shard payload encoding happens on the
    /// worker threads and overlaps compute). Zero for in-memory runs
    /// that never serialized.
    pub serialize_secs: f64,
    /// The busiest single shard thread's measured accumulate+encode
    /// seconds — a *directly measured* stage timing, unlike
    /// `compute_secs` (which is derived by subtraction and silently
    /// absorbs scheduling gaps). Zero when metrics are off: busy time
    /// is only clocked for instrumented runs.
    pub stage_busy_secs: f64,
    /// `elapsed − read_wait − stage_busy`, clamped at zero: wall-clock
    /// no measured stage accounts for (thread scheduling, routing,
    /// channel hand-off). Zero when metrics are off — without measured
    /// stage timings the residual would just be `compute_secs` again.
    pub unattributed_secs: f64,
    /// Archive sections written (v2: one per shard; v1: 1; in-memory: 0).
    pub sections: usize,
    /// Serialized archive size in bytes (0 for in-memory runs).
    pub archive_bytes: u64,
}

impl EngineReport {
    /// Per-shard open-flow peaks, summed — an upper bound on true
    /// simultaneous concurrency (shards may peak at different moments),
    /// and the figure idle-timeout eviction exists to bound. Forwards
    /// to [`CompressionReport::peak_active_flows`].
    pub fn peak_active_flows(&self) -> u64 {
        self.report.peak_active_flows
    }

    /// Re-derives `unattributed_secs` from the current split fields,
    /// and cross-checks the *measured* stage timing against wall-clock:
    /// a single thread cannot be busy longer than the run took, so
    /// `stage_busy_secs > elapsed_secs × 1.05` is an accounting bug —
    /// asserted in debug builds, reported as a warning in release (the
    /// report stays usable; the split is what's suspect).
    ///
    /// A no-op when `stage_busy_secs` is zero (metrics were off).
    pub fn reconcile_time_split(&mut self) {
        if self.stage_busy_secs <= 0.0 {
            self.unattributed_secs = 0.0;
            return;
        }
        if self.stage_busy_secs > self.elapsed_secs * 1.05 {
            debug_assert!(
                false,
                "stage timings disagree with wall-clock: busiest shard {:.6}s > elapsed {:.6}s × 1.05",
                self.stage_busy_secs, self.elapsed_secs
            );
            flowzip_obs::log::warn(&format!(
                "engine stage timings disagree with wall-clock: busiest shard {:.6}s > elapsed {:.6}s × 1.05 — time split is suspect",
                self.stage_busy_secs, self.elapsed_secs
            ));
        }
        self.unattributed_secs =
            (self.elapsed_secs - self.read_wait_secs - self.stage_busy_secs).max(0.0);
    }

    /// Serializes the full report as a JSON object (hand-rolled via
    /// [`JsonObject`] — the workspace is dependency-free) for
    /// `flowzip compress --json` and machine consumers of bench output.
    pub fn to_json(&self) -> String {
        let r = &self.report;
        let mut j = JsonObject::pretty();
        j.num("packets", r.packets);
        j.num("flows", r.flows);
        j.num("short_flows", r.short_flows);
        j.num("long_flows", r.long_flows);
        j.num("clusters", r.clusters);
        j.num("matched_flows", r.matched_flows);
        j.num("addresses", r.addresses);
        j.num("peak_active_flows", r.peak_active_flows);
        j.num("evicted_flows", self.evicted_flows);
        j.num("tsh_bytes", r.tsh_bytes);
        j.num("archive_bytes", self.archive_bytes);
        j.f6("ratio_vs_tsh", r.ratio_vs_tsh);
        j.num("shards", self.shards as u64);
        j.str("routing", &self.routing.to_string());
        j.num("routers", self.routers as u64);
        j.num("sections", self.sections as u64);
        j.f6("elapsed_secs", self.elapsed_secs);
        j.f6("read_wait_secs", self.read_wait_secs);
        j.f6("compute_secs", self.compute_secs);
        j.f6("serialize_secs", self.serialize_secs);
        j.f6("stage_busy_secs", self.stage_busy_secs);
        j.f6("unattributed_secs", self.unattributed_secs);
        j.f0("packets_per_sec", self.packets_per_sec);
        j.f2("mb_per_sec", self.mb_per_sec);
        j.finish()
    }
}

impl fmt::Display for EngineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}; {} shards ({} routing × {}), {:.2}s, {:.0} packets/s ({:.2} MB/s), peak {} active flows, {} evicted",
            self.report,
            self.shards,
            self.routing,
            self.routers,
            self.elapsed_secs,
            self.packets_per_sec,
            self.mb_per_sec,
            self.peak_active_flows(),
            self.evicted_flows
        )?;
        if self.read_wait_secs > 0.0 {
            write!(
                f,
                "; read-wait {:.3}s / compute {:.3}s",
                self.read_wait_secs, self.compute_secs
            )?;
        }
        if self.stage_busy_secs > 0.0 {
            write!(
                f,
                "; busiest shard {:.3}s, unattributed {:.3}s",
                self.stage_busy_secs, self.unattributed_secs
            )?;
        }
        if self.sections > 0 {
            write!(
                f,
                "; {} section archive, {} B, serial tail {:.4}s",
                self.sections, self.archive_bytes, self.serialize_secs
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowzip_core::DatasetSizes;

    #[test]
    fn display_mentions_throughput_and_peak() {
        let r = EngineReport {
            report: CompressionReport {
                packets: 10,
                flows: 2,
                short_flows: 2,
                long_flows: 0,
                matched_flows: 1,
                clusters: 1,
                addresses: 1,
                peak_active_flows: 2,
                sizes: DatasetSizes::default(),
                tsh_bytes: 440,
                ratio_vs_tsh: 0.03,
                ratio_vs_headers: 0.04,
            },
            shards: 4,
            routing: Routing::Parallel,
            routers: 2,
            elapsed_secs: 0.5,
            packets_per_sec: 20.0,
            mb_per_sec: 0.00088,
            evicted_flows: 0,
            read_wait_secs: 0.0,
            compute_secs: 0.5,
            serialize_secs: 0.0,
            stage_busy_secs: 0.0,
            unattributed_secs: 0.0,
            sections: 0,
            archive_bytes: 0,
        };
        let s = r.to_string();
        assert!(s.contains("4 shards (parallel routing × 2)"));
        assert!(s.contains("packets/s"));
        assert!(s.contains("peak 2 active flows"));
        // In-memory runs don't claim an archive...
        assert!(!s.contains("section archive"));
        // ...or a read-wait split (nothing was read).
        assert!(!s.contains("read-wait"));
        // ...serialized ones do.
        let mut ser = r.clone();
        ser.sections = 4;
        ser.archive_bytes = 1234;
        ser.serialize_secs = 0.001;
        ser.read_wait_secs = 0.125;
        ser.compute_secs = 0.375;
        let s = ser.to_string();
        assert!(s.contains("4 section archive"));
        assert!(s.contains("serial tail"));
        assert!(s.contains("read-wait 0.125s / compute 0.375s"));
    }

    #[test]
    fn json_round_is_well_formed_and_carries_the_split() {
        let r = EngineReport {
            report: CompressionReport {
                packets: 7,
                flows: 1,
                short_flows: 1,
                long_flows: 0,
                matched_flows: 0,
                clusters: 1,
                addresses: 1,
                peak_active_flows: 1,
                sizes: DatasetSizes::default(),
                tsh_bytes: 308,
                ratio_vs_tsh: 0.05,
                ratio_vs_headers: 0.06,
            },
            shards: 2,
            routing: Routing::Serial,
            routers: 1,
            elapsed_secs: 1.0,
            packets_per_sec: 7.0,
            mb_per_sec: 0.000308,
            evicted_flows: 3,
            read_wait_secs: 0.25,
            compute_secs: 0.75,
            serialize_secs: 0.01,
            stage_busy_secs: 0.6,
            unattributed_secs: 0.15,
            sections: 2,
            archive_bytes: 99,
        };
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for needle in [
            "\"packets\": 7",
            "\"read_wait_secs\": 0.250000",
            "\"compute_secs\": 0.750000",
            "\"stage_busy_secs\": 0.600000",
            "\"unattributed_secs\": 0.150000",
            "\"evicted_flows\": 3",
            "\"archive_bytes\": 99",
            "\"shards\": 2",
            "\"routing\": \"serial\"",
            "\"routers\": 1",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // Balanced braces and no trailing comma before the close.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",\n}"));
        assert!(flowzip_obs::json::is_valid_json(&json), "{json}");
    }

    #[test]
    fn reconcile_derives_unattributed_and_skips_uninstrumented_runs() {
        let mut r = EngineReport {
            report: CompressionReport {
                packets: 7,
                flows: 1,
                short_flows: 1,
                long_flows: 0,
                matched_flows: 0,
                clusters: 1,
                addresses: 1,
                peak_active_flows: 1,
                sizes: DatasetSizes::default(),
                tsh_bytes: 308,
                ratio_vs_tsh: 0.05,
                ratio_vs_headers: 0.06,
            },
            shards: 1,
            routing: Routing::Serial,
            routers: 1,
            elapsed_secs: 1.0,
            packets_per_sec: 7.0,
            mb_per_sec: 0.000308,
            evicted_flows: 0,
            read_wait_secs: 0.2,
            compute_secs: 0.8,
            serialize_secs: 0.0,
            stage_busy_secs: 0.5,
            unattributed_secs: 0.0,
            sections: 0,
            archive_bytes: 0,
        };
        r.reconcile_time_split();
        assert!(
            (r.unattributed_secs - 0.3).abs() < 1e-9,
            "{}",
            r.unattributed_secs
        );

        // Metrics off (no measured busy time): the residual stays zero
        // rather than double-reporting compute_secs.
        r.stage_busy_secs = 0.0;
        r.unattributed_secs = 99.0;
        r.reconcile_time_split();
        assert_eq!(r.unattributed_secs, 0.0);

        // Over-long busy time clamps the residual at zero (the >5%
        // disagreement check fires a debug assertion, so keep this just
        // under the threshold).
        r.stage_busy_secs = 1.04;
        r.reconcile_time_split();
        assert_eq!(r.unattributed_secs, 0.0);
    }
}
