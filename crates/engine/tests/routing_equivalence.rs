//! Property tests: parallel reader-side routing is **byte-identical** to
//! the serial router — the contract that let the single-router ceiling
//! be removed without a compatibility knob.
//!
//! Guarantees pinned here:
//!
//! * `routing=parallel` produces the same archive bytes as
//!   `routing=serial` for every combination of routing workers, shard
//!   count, batch size, channel capacity, idle eviction and container
//!   format — determinism is structural (sequence-ticket delivery +
//!   shard-side re-chunking), so this holds for *any* OS schedule, and
//!   the proptest battery hammers the schedule space.
//! * A batch-granular source ([`BatchRead`]) compresses identically to
//!   the equivalent flat packet stream, whatever its batch boundaries —
//!   boundaries carry no meaning.
//! * The multi-file reader path (`compress_batches_to_bytes` over a
//!   [`MultiFileSource`]) agrees byte-for-byte across routing modes.
//! * With one shard and no eviction, parallel routing remains
//!   byte-identical to the batch `Compressor` — the anchor the serial
//!   router always had.

use flowzip_core::{ArchiveFormat, Compressor, Params};
use flowzip_engine::{Routing, StreamingEngine};
use flowzip_io::{InputSource, MultiFileConfig, MultiFileSource};
use flowzip_trace::{tsh, Duration, Trace};
use flowzip_traffic::p2p::{P2pTrafficConfig, P2pTrafficGenerator};
use flowzip_traffic::web::{WebTrafficConfig, WebTrafficGenerator};
use proptest::prelude::*;

fn web_trace(flows: usize, seed: u64) -> Trace {
    WebTrafficGenerator::new(
        WebTrafficConfig {
            flows,
            duration_secs: 20.0,
            ..WebTrafficConfig::default()
        },
        seed,
    )
    .generate()
}

fn p2p_trace(flows: usize, seed: u64) -> Trace {
    P2pTrafficGenerator::new(
        P2pTrafficConfig {
            flows,
            duration_secs: 20.0,
            ..P2pTrafficConfig::default()
        },
        seed,
    )
    .generate()
}

/// One engine run to archive bytes with every knob explicit.
#[allow(clippy::too_many_arguments)]
fn compress_with(
    trace: &Trace,
    routing: Routing,
    routers: usize,
    shards: usize,
    batch_size: usize,
    channel_capacity: usize,
    idle_secs: Option<u64>,
    format: ArchiveFormat,
) -> Vec<u8> {
    let engine = StreamingEngine::builder()
        .routing(routing)
        .routers(routers)
        .shards(shards)
        .batch_size(batch_size)
        .channel_capacity(channel_capacity)
        .idle_timeout(idle_secs.map(Duration::from_secs))
        .format(format)
        .build();
    let (bytes, report) = engine
        .compress_stream_to_bytes(trace.iter().cloned().map(Ok))
        .unwrap();
    assert_eq!(report.report.packets, trace.len() as u64);
    assert_eq!(report.routing, routing);
    bytes
}

/// The core assertion: parallel ≡ serial, byte for byte.
#[allow(clippy::too_many_arguments)]
fn assert_routing_equivalent(
    trace: &Trace,
    routers: usize,
    shards: usize,
    batch_size: usize,
    channel_capacity: usize,
    idle_secs: Option<u64>,
    format: ArchiveFormat,
) -> Result<(), TestCaseError> {
    let serial = compress_with(
        trace,
        Routing::Serial,
        1,
        shards,
        batch_size,
        channel_capacity,
        idle_secs,
        format,
    );
    let parallel = compress_with(
        trace,
        Routing::Parallel,
        routers,
        shards,
        batch_size,
        channel_capacity,
        idle_secs,
        format,
    );
    prop_assert_eq!(
        &serial,
        &parallel,
        "routers {} shards {} batch {} cap {} idle {:?} {:?}: {} vs {} bytes differ",
        routers,
        shards,
        batch_size,
        channel_capacity,
        idle_secs,
        format,
        serial.len(),
        parallel.len()
    );
    Ok(())
}

/// The acceptance pin from the issue: routing workers {1, 2, 4} ×
/// shards {1, 2, 8} × eviction on/off × container v1/v2, on a fixed
/// trace — every cell byte-identical to the serial router.
#[test]
fn parallel_matches_serial_for_pinned_matrix() {
    let trace = web_trace(300, 2005);
    for routers in [1usize, 2, 4] {
        for shards in [1usize, 2, 8] {
            for idle_secs in [None, Some(1u64)] {
                for format in [ArchiveFormat::V1, ArchiveFormat::V2] {
                    assert_routing_equivalent(&trace, routers, shards, 128, 4, idle_secs, format)
                        .unwrap_or_else(|e| {
                            panic!("routers {routers}, shards {shards}, idle {idle_secs:?}, {format:?}: {e}")
                        });
                }
            }
        }
    }
}

/// With one shard and no eviction the parallel default keeps the
/// engine's oldest anchor: byte-identical to the batch compressor.
#[test]
fn parallel_single_shard_is_byte_identical_to_batch() {
    let trace = web_trace(200, 77);
    let (batch_archive, _) = Compressor::new(Params::paper()).compress(&trace);
    for routers in [1usize, 4] {
        let v1 = compress_with(
            &trace,
            Routing::Parallel,
            routers,
            1,
            64,
            4,
            None,
            ArchiveFormat::V1,
        );
        assert_eq!(v1, batch_archive.to_bytes(), "{routers} routers, v1");
        let v2 = compress_with(
            &trace,
            Routing::Parallel,
            routers,
            1,
            64,
            4,
            None,
            ArchiveFormat::V2,
        );
        assert_eq!(v2, batch_archive.to_bytes_v2(), "{routers} routers, v2");
    }
}

/// The multi-file reader path: a capture pre-split into ragged chunks,
/// drained through `compress_batches_to_bytes`, agrees byte-for-byte
/// across routing modes *and* with the single-stream serial run — the
/// batch hand-off introduces no boundary effects.
#[test]
fn multifile_batches_match_single_stream_across_routings() {
    let trace = web_trace(250, 4242);
    let dir = std::env::temp_dir().join(format!("fz-routeq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // Deliberately ragged splits so file boundaries never line up with
    // engine batch boundaries.
    let packets: Vec<_> = trace.iter().cloned().collect();
    let cuts = [0, packets.len() / 5, packets.len() / 2, packets.len()];
    let mut paths = Vec::new();
    for (i, w) in cuts.windows(2).enumerate() {
        let path = dir.join(format!("chunk-{i:02}.tsh"));
        std::fs::write(
            &path,
            tsh::to_bytes(&Trace::from_packets(packets[w[0]..w[1]].to_vec())),
        )
        .unwrap();
        paths.push(path);
    }

    let reference = compress_with(
        &trace,
        Routing::Serial,
        1,
        4,
        96,
        4,
        Some(2),
        ArchiveFormat::V2,
    );
    for routing in [Routing::Serial, Routing::Parallel] {
        for readers in [1usize, 2, 3] {
            let engine = StreamingEngine::builder()
                .routing(routing)
                .routers(readers)
                .shards(4)
                .batch_size(96)
                .channel_capacity(4)
                .idle_timeout(Some(Duration::from_secs(2)))
                .build();
            let source = MultiFileSource::open(
                &paths,
                MultiFileConfig {
                    readers,
                    // Reader batches ≠ engine batch_size on purpose: the
                    // BatchRead contract says boundaries carry no meaning.
                    batch_packets: 37,
                    queue_batches: 2,
                    prefetch: None,
                },
            )
            .unwrap();
            let (bytes, _) = engine
                .compress_batches_to_bytes(source.into_packets())
                .unwrap();
            assert_eq!(
                bytes, reference,
                "{routing} routing, {readers} readers diverged from the single-stream run"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    /// Random traffic × random topology: parallel ≡ serial bytes. The
    /// proptest battery is the schedule-space hammer — every case spawns
    /// a fresh thread pool, so ticket ordering is exercised under
    /// genuinely different interleavings.
    #[test]
    fn parallel_matches_serial_on_web_traffic(
        flows in 20usize..100,
        seed in 0u64..1_000,
        routers in 1usize..5,
        shards in 1usize..9,
        batch_size in 1usize..200,
        channel_capacity in 1usize..5,
        idle_secs in 0u64..30,
        v2 in any::<bool>(),
    ) {
        assert_routing_equivalent(
            &web_trace(flows, seed),
            routers,
            shards,
            batch_size,
            channel_capacity,
            (idle_secs > 0).then_some(idle_secs),
            if v2 { ArchiveFormat::V2 } else { ArchiveFormat::V1 },
        )?;
    }

    /// P2P traffic skews the flow-key distribution (many peers, few
    /// ports) — shard load is unbalanced, which stresses back-pressure
    /// on the hot shard channel.
    #[test]
    fn parallel_matches_serial_on_p2p_traffic(
        flows in 10usize..40,
        seed in 0u64..1_000,
        routers in 1usize..5,
        shards in 2usize..9,
    ) {
        assert_routing_equivalent(
            &p2p_trace(flows, seed),
            routers,
            shards,
            64,
            2,
            None,
            ArchiveFormat::V2,
        )?;
    }

    /// The report's routing fields describe the run faithfully.
    #[test]
    fn report_records_the_routing_topology(
        routers in 1usize..5,
        shards in 2usize..5,
        serial in any::<bool>(),
    ) {
        let routing = if serial { Routing::Serial } else { Routing::Parallel };
        let engine = StreamingEngine::builder()
            .routing(routing)
            .routers(routers)
            .shards(shards)
            .batch_size(64)
            .build();
        let trace = web_trace(30, 7);
        let (_, report) = engine
            .compress_stream_to_bytes(trace.iter().cloned().map(Ok))
            .unwrap();
        prop_assert_eq!(report.routing, routing);
        prop_assert_eq!(
            report.routers,
            if serial { 1 } else { routers },
            "serial routing always reports one router"
        );
        let json = report.to_json();
        let needle = format!("\"routing\": \"{routing}\"");
        prop_assert!(json.contains(&needle), "missing {} in {}", needle, json);
    }
}
