//! Backpressure and starvation stress for the routing fabric: extreme
//! topology × capacity corners must neither deadlock nor change output.
//!
//! The liveness argument (see `flowzip_engine::route`) says a full shard
//! channel is back-pressure, never deadlock, because shard workers always
//! drain and ticket waiters always progress. These tests drive the
//! corners where that argument has to carry the load — one-slot channels,
//! many routing workers funneling into few shards, few workers fanning
//! out to many shards — and enforce a wall-clock bound so a deadlock
//! fails the test instead of hanging CI.

use flowzip_core::ArchiveFormat;
use flowzip_engine::{Routing, StreamingEngine};
use flowzip_trace::Trace;
use flowzip_traffic::web::{WebTrafficConfig, WebTrafficGenerator};
use std::sync::mpsc;
use std::time::Duration;

fn web_trace(flows: usize, seed: u64) -> Trace {
    WebTrafficGenerator::new(
        WebTrafficConfig {
            flows,
            duration_secs: 20.0,
            ..WebTrafficConfig::default()
        },
        seed,
    )
    .generate()
}

/// Runs one engine compression on a watchdog thread: panics if it does
/// not complete within `limit` (a liveness failure), otherwise returns
/// the archive bytes.
fn compress_bounded(
    trace: &Trace,
    routing: Routing,
    routers: usize,
    shards: usize,
    batch_size: usize,
    channel_capacity: usize,
    limit: Duration,
) -> Vec<u8> {
    let packets: Vec<_> = trace.iter().cloned().collect();
    let (tx, rx) = mpsc::channel();
    let label = format!(
        "{routing} routing, {routers} routers → {shards} shards, \
         batch {batch_size}, capacity {channel_capacity}"
    );
    std::thread::spawn(move || {
        let engine = StreamingEngine::builder()
            .routing(routing)
            .routers(routers)
            .shards(shards)
            .batch_size(batch_size)
            .channel_capacity(channel_capacity)
            .format(ArchiveFormat::V2)
            .build();
        let result = engine.compress_stream_to_bytes(packets.into_iter().map(Ok));
        // The receiver may have already timed out and gone — ignore.
        let _ = tx.send(result);
    });
    match rx.recv_timeout(limit) {
        Ok(result) => result.expect("compression failed").0,
        Err(_) => panic!("{label}: no completion within {limit:?} — pipeline stalled"),
    }
}

/// Many routing workers funneling into few shards through one-slot
/// channels: every worker spends most of its life blocked on a full
/// channel or on the sequencer, and the run must still finish with
/// serial-identical bytes.
#[test]
fn many_routers_few_shards_one_slot_channels() {
    let trace = web_trace(150, 11);
    let limit = Duration::from_secs(60);
    let reference = compress_bounded(&trace, Routing::Serial, 1, 2, 16, 1, limit);
    for routers in [4usize, 8] {
        let bytes = compress_bounded(&trace, Routing::Parallel, routers, 2, 16, 1, limit);
        assert_eq!(bytes, reference, "{routers} routers diverged");
    }
}

/// The reverse skew: few routing workers fanning out to many shards,
/// again with one-slot channels, so a single slow shard can stall the
/// ticket holder and every other worker behind it.
#[test]
fn few_routers_many_shards_one_slot_channels() {
    let trace = web_trace(150, 23);
    let limit = Duration::from_secs(60);
    let reference = compress_bounded(&trace, Routing::Serial, 1, 8, 16, 1, limit);
    for routers in [1usize, 2] {
        let bytes = compress_bounded(&trace, Routing::Parallel, routers, 8, 16, 1, limit);
        assert_eq!(bytes, reference, "{routers} routers diverged");
    }
}

/// Tiny batches maximize hand-off count (one packet per pull at
/// batch_size 1) — the highest-contention schedule the fabric can see:
/// every packet takes the source lock, a sequencer turn and a channel
/// slot of its own.
#[test]
fn single_packet_batches_with_two_slot_channels() {
    let trace = web_trace(40, 31);
    let limit = Duration::from_secs(60);
    let reference = compress_bounded(&trace, Routing::Serial, 1, 3, 1, 2, limit);
    let bytes = compress_bounded(&trace, Routing::Parallel, 6, 3, 1, 2, limit);
    assert_eq!(bytes, reference);
}

/// More routing workers than the source ever has batches: the surplus
/// workers must observe the exhausted source and exit instead of waiting
/// on tickets that will never be assigned.
#[test]
fn more_routers_than_batches_terminates() {
    let trace = web_trace(5, 47); // a handful of packets, one batch
    let limit = Duration::from_secs(60);
    let reference = compress_bounded(&trace, Routing::Serial, 1, 2, 4096, 4, limit);
    let bytes = compress_bounded(&trace, Routing::Parallel, 8, 2, 4096, 4, limit);
    assert_eq!(bytes, reference);
}

/// Empty input across the stress topologies: channels open and close
/// with no traffic, workers race straight to the exhausted source.
#[test]
fn empty_input_terminates_under_every_topology() {
    let trace = Trace::new();
    let limit = Duration::from_secs(60);
    for (routers, shards) in [(1usize, 2usize), (8, 2), (2, 8)] {
        // v2 writes one section per shard, so the serial reference must
        // share the shard count.
        let reference = compress_bounded(&trace, Routing::Serial, 1, shards, 8, 1, limit);
        let bytes = compress_bounded(&trace, Routing::Parallel, routers, shards, 8, 1, limit);
        assert_eq!(bytes, reference, "{routers} routers × {shards} shards");
    }
}
