//! Integration tests for engine observability: instrumented runs must
//! report honest numbers, leave no queue depth behind, and — above all
//! — never change the bytes the engine produces.

use flowzip_engine::{Metrics, Profiler, Routing, StreamingEngine};
use flowzip_obs::names;
use flowzip_trace::prelude::*;

fn packets(n: u64) -> Vec<PacketRecord> {
    (0..n)
        .map(|i| {
            PacketRecord::builder()
                .src(
                    Ipv4Addr::new(10, (i >> 6) as u8, i as u8, 1),
                    2000 + (i % 500) as u16,
                )
                .dst(Ipv4Addr::new(192, 0, 2, 1), 80)
                .timestamp(Timestamp::from_micros(i * 50))
                .flags(if i % 3 == 2 {
                    TcpFlags::FIN
                } else {
                    TcpFlags::ACK
                })
                .build()
        })
        .collect()
}

fn engine(shards: usize, routing: Routing, metrics: &Metrics) -> StreamingEngine {
    StreamingEngine::builder()
        .shards(shards)
        .batch_size(64)
        .routing(routing)
        .routers(2)
        .metrics(metrics.clone())
        .build()
}

#[test]
fn instrumented_run_is_byte_identical_to_uninstrumented() {
    let input = packets(3_000);
    for routing in [Routing::Serial, Routing::Parallel] {
        let plain = engine(3, routing, &Metrics::disabled());
        let (baseline, _) = plain
            .compress_stream_to_bytes(input.iter().cloned().map(Ok))
            .unwrap();
        let metrics = Metrics::enabled();
        let profiler = Profiler::enabled();
        let observed = StreamingEngine::builder()
            .shards(3)
            .batch_size(64)
            .routing(routing)
            .routers(2)
            .metrics(metrics.clone())
            .profiler(profiler.clone())
            .build();
        let (bytes, _) = observed
            .compress_stream_to_bytes(input.iter().cloned().map(Ok))
            .unwrap();
        assert_eq!(bytes, baseline, "{routing} routing");
        assert!(profiler.to_trace_json().contains("\"ph\":\"X\""));
    }
}

#[test]
fn queue_depth_gauges_return_to_zero_after_a_clean_run() {
    let input = packets(5_000);
    for routing in [Routing::Serial, Routing::Parallel] {
        let metrics = Metrics::enabled();
        let e = engine(4, routing, &metrics);
        let (_, report) = e.compress_stream(input.iter().cloned().map(Ok)).unwrap();
        assert_eq!(report.report.packets, 5_000);
        let snap = metrics.snapshot();
        let depths = snap.queue_depths();
        assert_eq!(depths.len(), 4, "{routing}: one gauge per shard");
        for (shard, depth) in depths.iter().enumerate() {
            assert_eq!(
                *depth, 0,
                "{routing} routing: shard {shard} leaked queue depth"
            );
        }
        // Active-flow gauges are reset to zero at shard finalization.
        assert_eq!(
            snap.active_flows(),
            0,
            "{routing}: active flows after finish"
        );
    }
}

#[test]
fn counters_match_the_engine_report() {
    let input = packets(4_096);
    let metrics = Metrics::enabled();
    let e = StreamingEngine::builder()
        .shards(2)
        .batch_size(128)
        .idle_timeout(Some(Duration::from_millis(10)))
        .metrics(metrics.clone())
        .build();
    let (bytes, report) = e
        .compress_stream_to_bytes(input.iter().cloned().map(Ok))
        .unwrap();
    assert!(!bytes.is_empty());
    let snap = metrics.snapshot();
    assert_eq!(snap.counter(names::ENGINE_PACKETS), Some(4_096));
    assert_eq!(
        snap.counter(names::ENGINE_EVICTED_FLOWS),
        Some(report.evicted_flows)
    );
    assert!(snap.counter(names::ENGINE_BATCHES).unwrap() > 0);
    assert_eq!(
        snap.counter(names::CONTAINER_SECTIONS),
        Some(report.sections as u64)
    );
    assert!(snap.counter(names::CONTAINER_SERIALIZE_NS).is_some());
    // Measured stage time exists, fits wall-clock, and the residual
    // accounts for the rest.
    assert!(report.stage_busy_secs > 0.0);
    assert!(report.stage_busy_secs <= report.elapsed_secs * 1.05);
    assert!(report.unattributed_secs >= 0.0);
    assert!(report.unattributed_secs <= report.elapsed_secs);
}

#[test]
fn disabled_metrics_register_nothing_and_report_no_stage_time() {
    let input = packets(512);
    let metrics = Metrics::disabled();
    let e = engine(2, Routing::Parallel, &metrics);
    let (_, report) = e.compress_stream(input.iter().cloned().map(Ok)).unwrap();
    assert!(metrics.snapshot().is_empty());
    assert_eq!(report.stage_busy_secs, 0.0);
    assert_eq!(report.unattributed_secs, 0.0);
}
