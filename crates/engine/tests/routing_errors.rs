//! Error-path equivalence for the routing fabric: a truncated or corrupt
//! capture must abort the run with the *same first error* under parallel
//! routing as under the serial router — pulls are serialized and sources
//! are fused, so the first pulled error is the stream's first error,
//! whatever the worker count.

use flowzip_core::ArchiveFormat;
use flowzip_engine::{Routing, StreamingEngine};
use flowzip_io::{InputSource, MultiFileConfig, MultiFileSource};
use flowzip_trace::prelude::*;
use flowzip_trace::{tsh, TraceError, TshReader};

fn sample_trace(packets: u64) -> Trace {
    let mut t = Trace::new();
    for i in 0..packets {
        t.push(
            PacketRecord::builder()
                .timestamp(Timestamp::from_micros(i * 100))
                .src(
                    Ipv4Addr::new(10, 0, 0, (i % 200 + 1) as u8),
                    2000 + i as u16,
                )
                .dst(Ipv4Addr::new(192, 0, 2, 1), 80)
                .flags(if i % 5 == 0 {
                    TcpFlags::SYN
                } else {
                    TcpFlags::ACK
                })
                .build(),
        );
    }
    t
}

fn engine(routing: Routing, routers: usize, shards: usize, batch_size: usize) -> StreamingEngine {
    StreamingEngine::builder()
        .routing(routing)
        .routers(routers)
        .shards(shards)
        .batch_size(batch_size)
        .channel_capacity(2)
        .format(ArchiveFormat::V2)
        .build()
}

/// A TSH stream cut inside the 8th record: both routings surface the
/// identical `TruncatedRecord` — the packets decoded before the cut are
/// absorbed and discarded, the error aborts the run.
#[test]
fn truncated_tsh_mid_batch_propagates_the_same_error() {
    let bytes = tsh::to_bytes(&sample_trace(64));
    let cut = 7 * tsh::RECORD_BYTES + 13;
    // batch_size 4: the cut lands mid-way through the second batch, so
    // parallel routing has already delivered a full batch downstream
    // when the error is pulled.
    for (routing, routers) in [
        (Routing::Serial, 1usize),
        (Routing::Parallel, 1),
        (Routing::Parallel, 4),
    ] {
        let err = engine(routing, routers, 3, 4)
            .compress_stream(TshReader::new(&bytes[..cut]))
            .unwrap_err();
        assert!(
            matches!(err, TraceError::TruncatedRecord { got: 13, need: 44 }),
            "{routing} routing × {routers}: got {err:?}"
        );
    }
}

/// An error injected at every position of a small stream: serial and
/// parallel report the identical error whatever batch boundary it lands
/// on (first item of a batch, mid-batch, final partial batch).
#[test]
fn injected_error_at_every_position_matches_serial() {
    let trace = sample_trace(13);
    let packets: Vec<_> = trace.iter().cloned().collect();
    for position in 0..=packets.len() {
        let make_input = || {
            let mut items: Vec<Result<PacketRecord, TraceError>> =
                packets.iter().cloned().map(Ok).collect();
            items.insert(
                position,
                Err(TraceError::TruncatedRecord {
                    got: position,
                    need: 44,
                }),
            );
            items
        };
        let serial_err = engine(Routing::Serial, 1, 2, 4)
            .compress_stream(make_input())
            .unwrap_err();
        for routers in [1usize, 3] {
            let parallel_err = engine(Routing::Parallel, routers, 2, 4)
                .compress_stream(make_input())
                .unwrap_err();
            assert_eq!(
                parallel_err.to_string(),
                serial_err.to_string(),
                "position {position}, {routers} routers"
            );
            assert!(
                matches!(
                    parallel_err,
                    TraceError::TruncatedRecord { got, need: 44 } if got == position
                ),
                "position {position}: got {parallel_err:?}"
            );
        }
    }
}

/// The multi-file path: the second of three chunk files is truncated.
/// Both routings, at several reader counts, surface the same first
/// error through `compress_batches_to_bytes`.
#[test]
fn truncated_multifile_chunk_propagates_the_same_error() {
    let trace = sample_trace(60);
    let packets: Vec<_> = trace.iter().cloned().collect();
    let dir = std::env::temp_dir().join(format!("fz-routeerr-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let paths: Vec<_> = (0..3)
        .map(|i| {
            let path = dir.join(format!("chunk-{i}.tsh"));
            let chunk = Trace::from_packets(packets[i * 20..(i + 1) * 20].to_vec());
            let mut bytes = tsh::to_bytes(&chunk);
            if i == 1 {
                // Cut inside chunk 1's 6th record.
                bytes.truncate(5 * tsh::RECORD_BYTES + 7);
            }
            std::fs::write(&path, bytes).unwrap();
            path
        })
        .collect();

    let mut seen = Vec::new();
    for (routing, routers) in [
        (Routing::Serial, 1usize),
        (Routing::Parallel, 2),
        (Routing::Parallel, 4),
    ] {
        let source = MultiFileSource::open(
            &paths,
            MultiFileConfig {
                readers: routers.max(2),
                batch_packets: 8,
                queue_batches: 2,
                prefetch: None,
            },
        )
        .unwrap();
        let err = engine(routing, routers, 3, 8)
            .compress_batches_to_bytes(source.into_packets())
            .unwrap_err();
        assert!(
            matches!(err, TraceError::TruncatedRecord { got: 7, need: 44 }),
            "{routing} routing × {routers}: got {err:?}"
        );
        seen.push(err.to_string());
    }
    assert!(
        seen.windows(2).all(|w| w[0] == w[1]),
        "error text diverged across routings: {seen:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A leading error (very first pull fails) must not wedge the parallel
/// fabric: shard channels open and close without a single delivery.
#[test]
fn leading_error_aborts_cleanly() {
    for routers in [1usize, 4] {
        let input = vec![Err::<PacketRecord, _>(TraceError::InvalidTrace(
            "bad magic".into(),
        ))];
        let err = engine(Routing::Parallel, routers, 4, 8)
            .compress_stream(input)
            .unwrap_err();
        assert!(
            matches!(&err, TraceError::InvalidTrace(m) if m == "bad magic"),
            "{routers} routers: got {err:?}"
        );
    }
}
