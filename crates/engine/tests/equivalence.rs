//! Property tests: the sharded streaming engine agrees with the batch
//! `Compressor`.
//!
//! Guarantees pinned here, per the engine's design contract:
//!
//! * **Exact** on everything per-flow: packets, flows, short/long split,
//!   unique addresses, TSH size baseline — sharding only re-partitions
//!   flows, it never changes what a flow is.
//! * **Byte-identical** with one shard and no eviction: the single worker
//!   sees the identical flow-completion order the batch pass does.
//! * **Tolerance-bounded** on clustering with many shards: greedy cluster
//!   centers depend on offer order, so shard-local clustering plus an
//!   Eq. 4 re-clustering merge may split what one global greedy pass
//!   joined. Empirically the drift is small; we bound clusters to
//!   ±max(4, 25%) of batch and total size to ±25%, and keep the
//!   `matched = short − clusters` accounting identity exact.

// The suite pins the deprecated `compress_trace`/`compress_trace_to_bytes`
// shims: they must stay behaviorally identical to the primitives until
// they are removed (the pipeline crate pins the session API itself).
#![allow(deprecated)]

use flowzip_core::{ArchiveFormat, CompressedTrace, Compressor, Decompressor, Params};
use flowzip_engine::StreamingEngine;
use flowzip_trace::{Duration, Trace};
use flowzip_traffic::p2p::{P2pTrafficConfig, P2pTrafficGenerator};
use flowzip_traffic::web::{WebTrafficConfig, WebTrafficGenerator};
use proptest::prelude::*;

fn web_trace(flows: usize, seed: u64) -> Trace {
    WebTrafficGenerator::new(
        WebTrafficConfig {
            flows,
            duration_secs: 20.0,
            ..WebTrafficConfig::default()
        },
        seed,
    )
    .generate()
}

fn p2p_trace(flows: usize, seed: u64) -> Trace {
    P2pTrafficGenerator::new(
        P2pTrafficConfig {
            flows,
            duration_secs: 20.0,
            ..P2pTrafficConfig::default()
        },
        seed,
    )
    .generate()
}

/// Exact-equality and tolerance checks between one engine run and batch.
fn assert_equivalent(trace: &Trace, shards: usize) -> Result<(), TestCaseError> {
    let (_, batch) = Compressor::new(Params::paper()).compress(trace);
    let engine = StreamingEngine::builder()
        .shards(shards)
        .batch_size(128)
        .build();
    let (archive, streamed) = engine.compress_trace(trace).unwrap();
    let r = &streamed.report;

    prop_assert_eq!(r.packets, batch.packets);
    prop_assert_eq!(r.flows, batch.flows);
    prop_assert_eq!(r.short_flows, batch.short_flows);
    prop_assert_eq!(r.long_flows, batch.long_flows);
    prop_assert_eq!(r.addresses, batch.addresses);
    prop_assert_eq!(r.tsh_bytes, batch.tsh_bytes);

    // Accounting identity survives the merge.
    prop_assert_eq!(r.matched_flows + r.clusters, r.short_flows);

    // Clustering drift stays within the documented tolerance.
    let cluster_tol = (batch.clusters / 4).max(4);
    prop_assert!(
        r.clusters.abs_diff(batch.clusters) <= cluster_tol,
        "clusters {} vs batch {} (tolerance {})",
        r.clusters,
        batch.clusters,
        cluster_tol
    );
    let size_tol = (batch.sizes.total() / 4).max(64);
    prop_assert!(
        r.sizes.total().abs_diff(batch.sizes.total()) <= size_tol,
        "size {} vs batch {} (tolerance {})",
        r.sizes.total(),
        batch.sizes.total(),
        size_tol
    );

    // The merged archive is structurally valid and decodes.
    archive.validate().unwrap();
    let decoded = flowzip_core::CompressedTrace::from_bytes(&archive.to_bytes()).unwrap();
    prop_assert_eq!(decoded.packet_count(), batch.packets);
    Ok(())
}

/// Container-v2 output must be *packet-identical* to v1 after
/// decompression: same shard states serialized through either container
/// reconstruct the same global archive, so the §4 synthesis (one RNG
/// walked in time-seq order) produces the same trace byte for byte.
fn assert_v2_packet_identical(
    trace: &Trace,
    shards: usize,
    idle_secs: Option<u64>,
) -> Result<(), TestCaseError> {
    let build = |format: ArchiveFormat| {
        StreamingEngine::builder()
            .shards(shards)
            .batch_size(128)
            .idle_timeout(idle_secs.map(Duration::from_secs))
            .format(format)
            .build()
    };
    let (v1_bytes, _) = build(ArchiveFormat::V1)
        .compress_trace_to_bytes(trace)
        .unwrap();
    let (v2_bytes, v2_report) = build(ArchiveFormat::V2)
        .compress_trace_to_bytes(trace)
        .unwrap();
    prop_assert_eq!(ArchiveFormat::detect(&v2_bytes).unwrap(), ArchiveFormat::V2);
    prop_assert_eq!(v2_report.sections, shards);

    // The reconstructed archives agree exactly...
    let from_v1 = CompressedTrace::from_bytes(&v1_bytes).unwrap();
    let from_v2 = CompressedTrace::from_bytes(&v2_bytes).unwrap();
    prop_assert_eq!(&from_v1, &from_v2);

    // ...and so do the synthesized traces.
    let dec = Decompressor::default();
    let restored_v1 = dec.decompress(&from_v1);
    let restored_v2 = dec.decompress(&from_v2);
    prop_assert_eq!(restored_v1, restored_v2);
    Ok(())
}

/// The acceptance pin: shard counts 1, 2 and 8, with and without idle
/// eviction, on a fixed trace.
#[test]
fn v2_is_packet_identical_to_v1_for_pinned_shard_counts() {
    let trace = web_trace(300, 2005);
    for shards in [1usize, 2, 8] {
        for idle_secs in [None, Some(1u64)] {
            assert_v2_packet_identical(&trace, shards, idle_secs)
                .unwrap_or_else(|e| panic!("shards {shards}, idle {idle_secs:?}: {e}"));
        }
    }
}

proptest! {
    #[test]
    fn v2_matches_v1_across_shards_and_eviction(
        flows in 20usize..100,
        seed in 0u64..1_000,
        shards in 1usize..9,
        idle_secs in 0u64..30,
    ) {
        // idle_secs == 0 → eviction disabled, like the CLI flag.
        assert_v2_packet_identical(
            &web_trace(flows, seed),
            shards,
            (idle_secs > 0).then_some(idle_secs),
        )?;
    }

    #[test]
    fn web_traffic_matches_batch(
        flows in 30usize..120,
        seed in 0u64..1_000,
        shards in 1usize..5,
    ) {
        assert_equivalent(&web_trace(flows, seed), shards)?;
    }

    #[test]
    fn p2p_traffic_matches_batch(
        flows in 10usize..40,
        seed in 0u64..1_000,
        shards in 1usize..5,
    ) {
        assert_equivalent(&p2p_trace(flows, seed), shards)?;
    }

    #[test]
    fn single_shard_is_byte_identical_to_batch(
        flows in 20usize..80,
        seed in 0u64..1_000,
    ) {
        let trace = web_trace(flows, seed);
        let (batch_archive, batch) = Compressor::new(Params::paper()).compress(&trace);
        let engine = StreamingEngine::builder().shards(1).batch_size(64).build();
        let (archive, streamed) = engine.compress_trace(&trace).unwrap();
        prop_assert_eq!(archive.to_bytes(), batch_archive.to_bytes());
        prop_assert_eq!(streamed.report.clusters, batch.clusters);
        prop_assert_eq!(streamed.report.matched_flows, batch.matched_flows);
        prop_assert_eq!(streamed.report.sizes, batch.sizes);
        // A single shard sees the same concurrency the batch pass did.
        prop_assert_eq!(streamed.peak_active_flows(), batch.peak_active_flows);
    }
}
