//! The overlapped-I/O acceptance pins: feeding the engine through the
//! `flowzip-io` input subsystem must produce archives **byte-identical**
//! to the classic single-threaded reader path.
//!
//! * [`MultiFileSource`] over a pre-split trace == one `TshReader` over
//!   the unsplit trace, for every reader count. Parallel ingest only
//!   overlaps the work; delivery order is the file order, which for a
//!   split trace *is* the single-stream order.
//! * [`PrefetchReader`] beneath the reader == reading the file directly.
//!   Prefetching moves bytes between threads, never changes them.
//!
//! Both hold for v1 and v2 containers and for multi-shard engines — the
//! input subsystem sits entirely upstream of the routing determinism the
//! engine equivalence suite already pins.

// These tests pin the deprecated `compress_source_to_bytes` shim against
// the primitive path: the shim must stay byte-identical until removed
// (the pipeline crate carries the equivalent pins for the session API).
#![allow(deprecated)]

use flowzip_engine::StreamingEngine;
use flowzip_io::{FileSource, MultiFileConfig, MultiFileSource, PrefetchConfig};
use flowzip_trace::tsh;
use flowzip_trace::{Trace, TshReader};
use flowzip_traffic::web::{WebTrafficConfig, WebTrafficGenerator};
use proptest::prelude::*;
use std::path::PathBuf;

fn web_trace(flows: usize, seed: u64) -> Trace {
    WebTrafficGenerator::new(
        WebTrafficConfig {
            flows,
            duration_secs: 20.0,
            ..WebTrafficConfig::default()
        },
        seed,
    )
    .generate()
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "flowzip-engine-io-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Splits a TSH image into `n_files` chunk files on record boundaries.
fn split_tsh(dir: &std::path::Path, bytes: &[u8], n_files: usize) -> Vec<PathBuf> {
    tsh::split_record_chunks(bytes, n_files)
        .into_iter()
        .enumerate()
        .map(|(i, chunk)| {
            let path = dir.join(format!("chunk-{i:02}.tsh"));
            std::fs::write(&path, chunk).unwrap();
            path
        })
        .collect()
}

/// The reference archive: the engine fed by the classic single-threaded
/// reader over the unsplit image.
fn reference_bytes(engine: &StreamingEngine, tsh_image: &[u8]) -> Vec<u8> {
    engine
        .compress_stream_to_bytes(TshReader::new(tsh_image))
        .unwrap()
        .0
}

fn check_multifile(
    trace: &Trace,
    shards: usize,
    n_files: usize,
    readers: usize,
) -> Result<(), TestCaseError> {
    let dir = tmpdir(&format!("mf-{shards}-{n_files}-{readers}"));
    let image = tsh::to_bytes(trace);
    let paths = split_tsh(&dir, &image, n_files);
    let engine = StreamingEngine::builder()
        .shards(shards)
        .batch_size(128)
        .build();
    let want = reference_bytes(&engine, &image);

    let source = MultiFileSource::open(
        &paths,
        MultiFileConfig {
            readers,
            batch_packets: 64,
            queue_batches: 2,
            prefetch: None,
        },
    )
    .unwrap();
    let (got, report) = engine.compress_source_to_bytes(source).unwrap();
    prop_assert_eq!(
        &got,
        &want,
        "multi-file archive differs: shards {}, files {}, readers {}",
        shards,
        n_files,
        readers
    );
    prop_assert_eq!(report.report.packets, trace.len() as u64);
    // The source carried stats: compute + read-wait tile elapsed.
    prop_assert!(report.read_wait_secs >= 0.0);
    prop_assert!((report.read_wait_secs + report.compute_secs - report.elapsed_secs).abs() < 1e-9);
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

fn check_prefetch(trace: &Trace, shards: usize) -> Result<(), TestCaseError> {
    let dir = tmpdir(&format!("pf-{shards}"));
    let image = tsh::to_bytes(trace);
    let path = dir.join("whole.tsh");
    std::fs::write(&path, &image).unwrap();
    let engine = StreamingEngine::builder()
        .shards(shards)
        .batch_size(128)
        .build();
    let want = reference_bytes(&engine, &image);

    let source = FileSource::open_prefetched(
        &path,
        PrefetchConfig {
            chunk_bytes: 8 << 10,
            chunks: 2,
        },
    )
    .unwrap();
    let (got, _) = engine.compress_source_to_bytes(source).unwrap();
    prop_assert_eq!(&got, &want, "prefetched archive differs: shards {}", shards);
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

/// The fixed acceptance pin: a split trace through parallel readers and
/// the unsplit trace through the prefetcher, across shard counts, all
/// byte-identical to the classic path — plus the ≥-1-reader sanity that
/// the no-prefetch single-file `FileSource` is the classic path.
#[test]
fn pinned_multifile_and_prefetch_archives_are_byte_identical() {
    let trace = web_trace(250, 0x10);
    for shards in [1usize, 2, 8] {
        check_multifile(&trace, shards, 4, 2).unwrap_or_else(|e| panic!("{e}"));
        check_prefetch(&trace, shards).unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn plain_file_source_is_the_classic_path_with_wait_accounting() {
    let trace = web_trace(150, 0x11);
    let dir = tmpdir("plain");
    let image = tsh::to_bytes(&trace);
    let path = dir.join("whole.tsh");
    std::fs::write(&path, &image).unwrap();
    let engine = StreamingEngine::builder().shards(2).batch_size(64).build();
    let want = reference_bytes(&engine, &image);
    let (got, report) = engine
        .compress_source_to_bytes(FileSource::open(&path).unwrap())
        .unwrap();
    assert_eq!(got, want);
    // Plain reads charge their syscall time as read-wait.
    assert!(report.read_wait_secs >= 0.0);
    assert!(report.compute_secs > 0.0);
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    /// Acceptance criterion, property form: `MultiFileSource` over a
    /// split trace produces the byte-identical archive for any split
    /// shape, reader count and shard count.
    #[test]
    fn multifile_source_matches_single_reader_archive(
        flows in 20usize..100,
        seed in 0u64..500,
        shards in 1usize..5,
        n_files in 1usize..6,
        readers in 1usize..5,
    ) {
        check_multifile(&web_trace(flows, seed), shards, n_files, readers)?;
    }

    /// Acceptance criterion, property form: `PrefetchReader` over the
    /// unsplit trace produces the byte-identical archive.
    #[test]
    fn prefetch_reader_matches_direct_read_archive(
        flows in 20usize..100,
        seed in 0u64..500,
        shards in 1usize..5,
    ) {
        check_prefetch(&web_trace(flows, seed), shards)?;
    }
}
