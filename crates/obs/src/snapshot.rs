//! Point-in-time metric dumps and the background sampler that emits
//! them live — the plumbing a `flowzip serve` daemon's stats endpoint
//! sits on, and what `flowzip compress --stats-interval SECS` prints.
//!
//! The JSON-lines schema (one object per line, pinned by tests):
//!
//! ```json
//! {"type":"flowzip.stats","seq":1,"elapsed_secs":1.002,
//!  "packets":123456,"packets_per_sec":123210,
//!  "active_flows":42,"evicted_flows":7,"queue_depth":[0,1,0,2],
//!  "counters":{"engine.packets":123456,…},
//!  "gauges":{"engine.shard.0.queue_depth":0,…},
//!  "histograms":{"engine.shard.0.accumulate_ns":{"count":120,"sum":8100200},…}}
//! ```
//!
//! The derived top-level fields (`packets`, `packets_per_sec`,
//! `active_flows`, `evicted_flows`, `queue_depth`) are convenience
//! views over the full dumps that follow them; `packets_per_sec` is the
//! rate since the previous snapshot. The [`Sampler`] baselines its first
//! interval at the moment it starts, so every emitted rate is strictly
//! window-relative — a registry that sat idle for an hour before
//! sampling began does not smear that hour into the first line.

use crate::json::JsonObject;
use crate::names;
use std::io::Write;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A histogram's state at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bucket bounds (as registered).
    pub bounds: Vec<u64>,
    /// Counts per bound, plus the trailing overflow bucket.
    pub buckets: Vec<u64>,
    /// Total of recorded values.
    pub sum: u64,
    /// Number of recorded values.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Mean recorded value, or 0 with no observations.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile estimate from the fixed buckets (`0.5` = p50,
    /// `0.95` = p95): the inclusive upper bound of the bucket holding
    /// the target rank. `None` with no observations; ranks landing in
    /// the overflow bucket report the largest bound — a lower bound on
    /// the true quantile.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        quantile_from_buckets(&self.bounds, &self.buckets, q)
    }
}

/// Nearest-rank bucket quantile shared by the live
/// [`Histogram`](crate::Histogram) handle and [`HistogramSnapshot`]:
/// walk the cumulative counts to the bucket holding rank
/// `ceil(q · count)` and report its upper bound (overflow ranks report
/// the last bound).
pub(crate) fn quantile_from_buckets(bounds: &[u64], buckets: &[u64], q: f64) -> Option<u64> {
    let count: u64 = buckets.iter().sum();
    if count == 0 || bounds.is_empty() {
        return None;
    }
    let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return Some(bounds[i.min(bounds.len() - 1)]);
        }
    }
    Some(bounds[bounds.len() - 1])
}

/// One instrument's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter total.
    Counter(u64),
    /// A gauge level.
    Gauge(i64),
    /// A histogram state.
    Histogram(HistogramSnapshot),
}

/// A point-in-time dump of every registered instrument (what
/// [`Metrics::snapshot`](crate::Metrics::snapshot) returns), sorted by
/// name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsSnapshot {
    /// 1-based snapshot number within the registry (0 = disabled).
    pub seq: u64,
    /// Seconds since the registry was created.
    pub elapsed_secs: f64,
    /// `(name, value)` pairs, sorted by name.
    pub entries: Vec<(String, MetricValue)>,
}

impl StatsSnapshot {
    /// The empty snapshot a disabled registry returns.
    pub fn empty() -> StatsSnapshot {
        StatsSnapshot::default()
    }

    /// Whether the snapshot carries any instruments.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The counter registered under `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Counter(c) if n == name => Some(*c),
            _ => None,
        })
    }

    /// The gauge registered under `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Gauge(g) if n == name => Some(*g),
            _ => None,
        })
    }

    /// The histogram registered under `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Histogram(h) if n == name => Some(h),
            _ => None,
        })
    }

    /// Per-shard queue depths in shard order (index parsed from the
    /// gauge name; missing shards read 0).
    pub fn queue_depths(&self) -> Vec<i64> {
        self.per_shard_gauges(names::QUEUE_DEPTH_SUFFIX)
    }

    /// Open flows summed across the per-shard active-flow gauges.
    pub fn active_flows(&self) -> i64 {
        self.per_shard_gauges(names::ACTIVE_FLOWS_SUFFIX)
            .iter()
            .sum()
    }

    fn per_shard_gauges(&self, suffix: &str) -> Vec<i64> {
        let mut out: Vec<i64> = Vec::new();
        for (name, value) in &self.entries {
            let (Some(idx), MetricValue::Gauge(g)) = (names::shard_index(name, suffix), value)
            else {
                continue;
            };
            if out.len() <= idx {
                out.resize(idx + 1, 0);
            }
            out[idx] = *g;
        }
        out
    }

    /// The packets-per-second rate between `prev` and this snapshot
    /// (from registry creation when `prev` is `None`).
    pub fn packets_per_sec(&self, prev: Option<&StatsSnapshot>) -> f64 {
        let packets = self.counter(names::ENGINE_PACKETS).unwrap_or(0);
        let (base_packets, base_secs) = prev.map_or((0, 0.0), |p| {
            (
                p.counter(names::ENGINE_PACKETS).unwrap_or(0),
                p.elapsed_secs,
            )
        });
        let dt = (self.elapsed_secs - base_secs).max(f64::EPSILON);
        packets.saturating_sub(base_packets) as f64 / dt
    }

    /// One JSON-lines record (no trailing newline): derived headline
    /// fields first, then the full counter/gauge/histogram dumps. The
    /// schema is pinned by tests — see the [module docs](self).
    pub fn to_json_line(&self, prev: Option<&StatsSnapshot>) -> String {
        let mut j = JsonObject::compact();
        j.str("type", "flowzip.stats");
        j.num("seq", self.seq);
        j.f6("elapsed_secs", self.elapsed_secs);
        j.num("packets", self.counter(names::ENGINE_PACKETS).unwrap_or(0));
        j.f0("packets_per_sec", self.packets_per_sec(prev));
        j.int("active_flows", self.active_flows());
        j.num(
            "evicted_flows",
            self.counter(names::ENGINE_EVICTED_FLOWS).unwrap_or(0),
        );
        let depths: Vec<String> = self.queue_depths().iter().map(i64::to_string).collect();
        j.raw("queue_depth", &format!("[{}]", depths.join(",")));
        j.raw(
            "counters",
            &self.dump(|v| match v {
                MetricValue::Counter(c) => Some(c.to_string()),
                _ => None,
            }),
        );
        j.raw(
            "gauges",
            &self.dump(|v| match v {
                MetricValue::Gauge(g) => Some(g.to_string()),
                _ => None,
            }),
        );
        j.raw(
            "histograms",
            &self.dump(|v| match v {
                MetricValue::Histogram(h) => {
                    Some(format!("{{\"count\":{},\"sum\":{}}}", h.count, h.sum))
                }
                _ => None,
            }),
        );
        j.finish()
    }

    /// The human one-liner variant of [`StatsSnapshot::to_json_line`].
    /// Ends with the p95 read-wait stall and p95 measured RTT (`-` until
    /// the respective histogram has observations).
    pub fn to_human_line(&self, prev: Option<&StatsSnapshot>) -> String {
        let depths: Vec<String> = self.queue_depths().iter().map(i64::to_string).collect();
        // Both histograms may be absent (no reader stalls yet, telemetry
        // off) — the field still prints so columns line up across lines.
        let p95_ms = |name: &str, per_ms: f64| {
            self.histogram(name)
                .and_then(|h| h.quantile(0.95))
                .map_or_else(
                    || "-".to_string(),
                    |v| format!("{:.1}ms", v as f64 / per_ms),
                )
        };
        format!(
            "[stats {:6.1}s] {:>10.0} pkt/s | packets {} | active {} | evicted {} | queues [{}] | p95 read-wait {} rtt {}",
            self.elapsed_secs,
            self.packets_per_sec(prev),
            self.counter(names::ENGINE_PACKETS).unwrap_or(0),
            self.active_flows(),
            self.counter(names::ENGINE_EVICTED_FLOWS).unwrap_or(0),
            depths.join(","),
            p95_ms(names::IO_READ_WAIT_HIST_NS, 1e6),
            p95_ms(names::TELEMETRY_RTT_US, 1e3),
        )
    }

    /// The full registry dump as one compact JSON object —
    /// `{"counters":{…},"gauges":{…},"histograms":{…}}` — what the
    /// unified pipeline report embeds under its `"metrics"` key.
    /// Histograms keep their full bucket layout here.
    pub fn to_json(&self) -> String {
        let mut j = JsonObject::compact();
        j.raw(
            "counters",
            &self.dump(|v| match v {
                MetricValue::Counter(c) => Some(c.to_string()),
                _ => None,
            }),
        );
        j.raw(
            "gauges",
            &self.dump(|v| match v {
                MetricValue::Gauge(g) => Some(g.to_string()),
                _ => None,
            }),
        );
        j.raw(
            "histograms",
            &self.dump(|v| match v {
                MetricValue::Histogram(h) => {
                    let bounds: Vec<String> = h.bounds.iter().map(u64::to_string).collect();
                    let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
                    Some(format!(
                        "{{\"count\":{},\"sum\":{},\"bounds\":[{}],\"buckets\":[{}]}}",
                        h.count,
                        h.sum,
                        bounds.join(","),
                        buckets.join(",")
                    ))
                }
                _ => None,
            }),
        );
        j.finish()
    }

    /// A compact `{"name":value,…}` object over the entries `select`
    /// maps to a raw JSON value.
    fn dump(&self, select: impl Fn(&MetricValue) -> Option<String>) -> String {
        let mut j = JsonObject::compact();
        for (name, value) in &self.entries {
            if let Some(v) = select(value) {
                j.raw(name, &v);
            }
        }
        j.finish()
    }
}

/// How the sampler formats each snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotFormat {
    /// One JSON object per line (the machine default).
    #[default]
    JsonLines,
    /// A fixed-width human one-liner.
    Human,
}

impl SnapshotFormat {
    /// Parses the CLI spelling (`json` | `human`).
    ///
    /// # Errors
    ///
    /// A descriptive message naming the accepted spellings.
    pub fn parse(name: &str) -> Result<SnapshotFormat, String> {
        match name {
            "json" | "jsonl" => Ok(SnapshotFormat::JsonLines),
            "human" => Ok(SnapshotFormat::Human),
            other => Err(format!(
                "unknown stats format `{other}` (want json or human)"
            )),
        }
    }
}

/// Where sampler output goes — a boxed writer with a `Debug` impl so
/// builders holding one can keep deriving `Debug`.
pub struct StatsSink(Box<dyn Write + Send>);

impl StatsSink {
    /// Wraps any writer.
    pub fn new(w: Box<dyn Write + Send>) -> StatsSink {
        StatsSink(w)
    }

    /// The default sink: standard error.
    pub fn stderr() -> StatsSink {
        StatsSink(Box::new(std::io::stderr()))
    }
}

impl std::fmt::Debug for StatsSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("StatsSink(..)")
    }
}

impl Write for StatsSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.0.flush()
    }
}

/// Signals the sampler thread to stop without waiting out the interval.
#[derive(Default)]
struct StopFlag {
    stopped: Mutex<bool>,
    wake: Condvar,
}

/// A background thread emitting one snapshot per interval, plus a final
/// one at stop — so even a run shorter than the interval produces at
/// least one line. Stops (and joins) on [`Sampler::stop`] or drop.
#[derive(Debug)]
pub struct Sampler {
    stop: Arc<StopFlag>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for StopFlag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("StopFlag")
    }
}

impl Sampler {
    /// Starts sampling `metrics` every `interval` into `out`. A
    /// disabled `metrics` handle starts nothing (there would be nothing
    /// to report).
    pub fn start(
        metrics: &crate::Metrics,
        interval: Duration,
        format: SnapshotFormat,
        mut out: StatsSink,
    ) -> Sampler {
        let stop = Arc::new(StopFlag::default());
        if !metrics.is_enabled() {
            return Sampler { stop, handle: None };
        }
        let metrics = metrics.clone();
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            // Baseline the first interval at sampler start (seq-neutral
            // via `peek`), so the first emitted `packets_per_sec` covers
            // exactly the first sampling window — not everything since
            // the registry was created. A long-lived daemon registry can
            // be hours old before sampling starts.
            let mut prev: Option<StatsSnapshot> = Some(metrics.peek());
            let emit = |out: &mut StatsSink, snap: &StatsSnapshot, prev: Option<&StatsSnapshot>| {
                let line = match format {
                    SnapshotFormat::JsonLines => snap.to_json_line(prev),
                    SnapshotFormat::Human => snap.to_human_line(prev),
                };
                let _ = writeln!(out, "{line}");
                let _ = out.flush();
            };
            loop {
                let stopped = {
                    let guard = flag.stopped.lock().unwrap_or_else(|e| e.into_inner());
                    let (guard, _) = flag
                        .wake
                        .wait_timeout_while(guard, interval, |stopped| !*stopped)
                        .unwrap_or_else(|e| e.into_inner());
                    *guard
                };
                let snap = metrics.snapshot();
                emit(&mut out, &snap, prev.as_ref());
                if stopped {
                    return;
                }
                prev = Some(snap);
            }
        });
        Sampler {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the sampler, emitting one final snapshot, and joins the
    /// thread. Dropping does the same.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        {
            let mut stopped = self.stop.stopped.lock().unwrap_or_else(|e| e.into_inner());
            *stopped = true;
        }
        self.stop.wake.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::is_valid_json;
    use crate::Metrics;

    /// A clonable in-memory sink tests can read back.
    #[derive(Clone, Default)]
    pub(crate) struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        pub(crate) fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn populated_metrics() -> Metrics {
        let m = Metrics::enabled();
        m.counter(names::ENGINE_PACKETS).add(5_000);
        m.counter(names::ENGINE_EVICTED_FLOWS).add(7);
        m.gauge(&names::shard_queue_depth(0)).set(2);
        m.gauge(&names::shard_queue_depth(1)).set(0);
        m.gauge(&names::shard_active_flows(0)).set(11);
        m.gauge(&names::shard_active_flows(1)).set(31);
        m.histogram(&names::shard_accumulate_ns(0), &[1_000, 1_000_000])
            .record(500);
        m
    }

    #[test]
    fn snapshot_lookups_and_derived_views() {
        let snap = populated_metrics().snapshot();
        assert_eq!(snap.counter(names::ENGINE_PACKETS), Some(5_000));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.gauge(&names::shard_queue_depth(0)), Some(2));
        assert_eq!(snap.queue_depths(), vec![2, 0]);
        assert_eq!(snap.active_flows(), 42);
        let h = snap.histogram(&names::shard_accumulate_ns(0)).unwrap();
        assert_eq!((h.count, h.sum), (1, 500));
        assert!((h.mean() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn json_line_schema_is_pinned() {
        let snap = populated_metrics().snapshot();
        let line = snap.to_json_line(None);
        assert!(is_valid_json(&line), "{line}");
        assert!(!line.contains('\n'));
        // The headline fields the live-stats contract promises.
        assert!(line.starts_with(r#"{"type":"flowzip.stats","seq":1,"elapsed_secs":"#));
        for needle in [
            r#""packets":5000"#,
            r#""packets_per_sec":"#,
            r#""active_flows":42"#,
            r#""evicted_flows":7"#,
            r#""queue_depth":[2,0]"#,
            r#""counters":{"#,
            r#""gauges":{"#,
            r#""histograms":{"engine.shard.0.accumulate_ns":{"count":1,"sum":500}}"#,
            r#""engine.packets":5000"#,
            r#""engine.shard.0.queue_depth":2"#,
        ] {
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
    }

    #[test]
    fn rate_is_computed_against_the_previous_snapshot() {
        let m = Metrics::enabled();
        let c = m.counter(names::ENGINE_PACKETS);
        c.add(100);
        let mut first = m.snapshot();
        c.add(400);
        let mut second = m.snapshot();
        // Pin elapsed times so the rate is deterministic.
        first.elapsed_secs = 1.0;
        second.elapsed_secs = 3.0;
        assert!((second.packets_per_sec(Some(&first)) - 200.0).abs() < 1e-9);
        assert!((first.packets_per_sec(None) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn human_line_mentions_the_headlines() {
        let line = populated_metrics().snapshot().to_human_line(None);
        assert!(line.contains("pkt/s"));
        assert!(line.contains("active 42"));
        assert!(line.contains("evicted 7"));
        assert!(line.contains("queues [2,0]"));
        // Neither p95 histogram is populated here, so both show the
        // placeholder.
        assert!(line.contains("p95 read-wait - rtt -"), "{line}");
    }

    #[test]
    fn human_line_reports_p95_read_wait_and_rtt() {
        let m = populated_metrics();
        let wait = m.histogram(names::IO_READ_WAIT_HIST_NS, crate::DURATION_NS_BOUNDS);
        for _ in 0..99 {
            wait.record(500_000); // ≤ 1 ms
        }
        wait.record(80_000_000); // one 80 ms stall: the p99, not the p95
        let rtt = m.histogram(names::TELEMETRY_RTT_US, crate::metrics::RTT_US_BOUNDS);
        for _ in 0..20 {
            rtt.record(70_000); // ≤ 100 ms bucket
        }
        let line = m.snapshot().to_human_line(None);
        assert!(line.contains("p95 read-wait 1.0ms rtt 100.0ms"), "{line}");
    }

    #[test]
    fn bucket_quantiles_walk_the_cumulative_counts() {
        let h = HistogramSnapshot {
            bounds: vec![10, 100, 1_000],
            buckets: vec![50, 40, 9, 1], // 100 observations + 1 overflow slot
            sum: 0,
            count: 100,
        };
        assert_eq!(h.quantile(0.0), Some(10));
        assert_eq!(h.quantile(0.5), Some(10));
        assert_eq!(h.quantile(0.9), Some(100));
        assert_eq!(h.quantile(0.95), Some(1_000));
        // Overflow ranks clamp to the last bound.
        assert_eq!(h.quantile(1.0), Some(1_000));
        let empty = HistogramSnapshot {
            bounds: vec![10],
            buckets: vec![0, 0],
            sum: 0,
            count: 0,
        };
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn live_handle_quantile_matches_snapshot() {
        let m = Metrics::enabled();
        let h = m.histogram("q", &[100, 1_000]);
        for v in [50, 60, 70, 500, 2_000] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), Some(100));
        assert_eq!(h.quantile(0.95), Some(1_000));
        assert_eq!(
            m.snapshot().histogram("q").unwrap().quantile(0.5),
            Some(100)
        );
        assert_eq!(crate::Histogram::disabled().quantile(0.5), None);
    }

    #[test]
    fn full_dump_keeps_histogram_buckets() {
        let dump = populated_metrics().snapshot().to_json();
        assert!(is_valid_json(&dump), "{dump}");
        assert!(dump.contains(r#""bounds":[1000,1000000]"#), "{dump}");
        assert!(dump.contains(r#""buckets":[1,0,0]"#), "{dump}");
    }

    #[test]
    fn empty_snapshot_serializes_cleanly() {
        let snap = StatsSnapshot::empty();
        assert!(snap.is_empty());
        let line = snap.to_json_line(None);
        assert!(is_valid_json(&line), "{line}");
        assert!(line.contains(r#""queue_depth":[]"#));
    }

    #[test]
    fn sampler_emits_a_final_snapshot_even_on_short_runs() {
        let m = populated_metrics();
        let buf = SharedBuf::default();
        let sampler = Sampler::start(
            &m,
            Duration::from_secs(3600),
            SnapshotFormat::JsonLines,
            StatsSink::new(Box::new(buf.clone())),
        );
        sampler.stop();
        let out = buf.contents();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 1, "exactly the final snapshot: {out}");
        assert!(is_valid_json(lines[0]), "{out}");
    }

    #[test]
    fn first_sampler_line_rates_against_sampler_start_not_registry_creation() {
        // A registry that did heavy work *before* sampling started: the
        // first emitted line must not smear those packets over the
        // pre-sampler elapsed time.
        let m = Metrics::enabled();
        m.counter(names::ENGINE_PACKETS).add(1_000_000);
        std::thread::sleep(Duration::from_millis(20));
        let buf = SharedBuf::default();
        let sampler = Sampler::start(
            &m,
            Duration::from_secs(3600),
            SnapshotFormat::JsonLines,
            StatsSink::new(Box::new(buf.clone())),
        );
        sampler.stop();
        let out = buf.contents();
        let line = out.lines().next().unwrap();
        // No packets arrived inside the sampling window, so the
        // window-relative rate is exactly 0 (the old since-creation rate
        // would have been tens of millions per second).
        assert!(line.contains(r#""packets_per_sec":0,"#), "{line}");
        // The baseline peek is sequence-neutral: the first *emitted*
        // snapshot still carries seq 1, pinning the JSON-lines schema.
        assert!(line.contains(r#""seq":1,"#), "{line}");
    }

    #[test]
    fn peek_reads_without_advancing_the_snapshot_sequence() {
        let m = populated_metrics();
        let peeked = m.peek();
        assert_eq!(peeked.seq, 0, "no snapshot taken yet");
        assert_eq!(peeked.counter(names::ENGINE_PACKETS), Some(5_000));
        assert_eq!(m.snapshot().seq, 1, "peek did not consume seq 1");
        assert_eq!(m.peek().seq, 1, "peek reports the latest seq");
        assert_eq!(m.snapshot().seq, 2);
        assert!(Metrics::disabled().peek().is_empty());
    }

    #[test]
    fn sampler_emits_periodically() {
        let m = populated_metrics();
        let buf = SharedBuf::default();
        let sampler = Sampler::start(
            &m,
            Duration::from_millis(20),
            SnapshotFormat::JsonLines,
            StatsSink::new(Box::new(buf.clone())),
        );
        std::thread::sleep(Duration::from_millis(120));
        sampler.stop();
        let out = buf.contents();
        assert!(out.lines().count() >= 2, "{out}");
        for line in out.lines() {
            assert!(is_valid_json(line), "{line}");
        }
    }

    #[test]
    fn sampler_on_disabled_metrics_is_inert() {
        let buf = SharedBuf::default();
        let sampler = Sampler::start(
            &Metrics::disabled(),
            Duration::from_millis(1),
            SnapshotFormat::JsonLines,
            StatsSink::new(Box::new(buf.clone())),
        );
        std::thread::sleep(Duration::from_millis(10));
        sampler.stop();
        assert!(buf.contents().is_empty());
    }
}
