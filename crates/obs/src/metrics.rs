//! The lock-free metrics registry: named atomic counters, gauges and
//! fixed-bucket histograms behind cheap-clone handles.
//!
//! Registration takes a mutex once per instrument *name*; every
//! recording after that is a relaxed atomic on a shared cell. A
//! disabled [`Metrics`] handle hands out instruments whose inner `Arc`
//! is `None`, so the instrumented hot path pays one branch and no
//! allocation — the enum-dispatch no-op recorder the whole layer's
//! "near-zero cost when off" promise rests on.

use crate::snapshot::{HistogramSnapshot, MetricValue, StatsSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Bucket upper bounds (inclusive, in nanoseconds) for duration
/// histograms: 1 µs, 10 µs, 100 µs, 1 ms, 10 ms, 100 ms, 1 s. Values
/// above the last bound land in the overflow bucket.
pub const DURATION_NS_BOUNDS: &[u64] = &[
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

/// Bucket upper bounds (inclusive, in microseconds) for RTT histograms:
/// a 1–3–10 ladder from 1 ms to 3 s. Values above the last bound land
/// in the overflow bucket.
pub const RTT_US_BOUNDS: &[u64] = &[
    1_000, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000, 3_000_000,
];

#[derive(Debug, Default)]
struct CounterCell {
    value: AtomicU64,
}

impl CounterCell {
    /// Saturating add: a counter that hits `u64::MAX` pins there instead
    /// of wrapping back to a small number mid-run.
    fn add(&self, n: u64) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(n))
            });
    }
}

#[derive(Debug, Default)]
struct GaugeCell {
    value: AtomicI64,
}

impl GaugeCell {
    fn add(&self, n: i64) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(n))
            });
    }
}

#[derive(Debug)]
struct HistogramCell {
    /// Inclusive upper bounds, strictly increasing.
    bounds: Vec<u64>,
    /// One count per bound plus a trailing overflow bucket.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistogramCell {
    fn new(bounds: &[u64]) -> HistogramCell {
        HistogramCell {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(value))
            });
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

/// What one registered name resolves to.
#[derive(Debug, Clone)]
enum Cell {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<HistogramCell>),
}

impl Cell {
    fn kind(&self) -> &'static str {
        match self {
            Cell::Counter(_) => "counter",
            Cell::Gauge(_) => "gauge",
            Cell::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Registry {
    started: Instant,
    instruments: Mutex<BTreeMap<String, Cell>>,
    snapshot_seq: AtomicU64,
}

/// A monotonically increasing event count. Cheap to clone; clones share
/// the cell. All arithmetic saturates.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<CounterCell>>,
}

impl Counter {
    /// A no-op counter (what a disabled [`Metrics`] hands out).
    pub fn disabled() -> Counter {
        Counter::default()
    }

    /// Whether recording actually lands anywhere.
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (saturating at `u64::MAX`).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.add(n);
        }
    }

    /// Current total (0 for a disabled handle).
    pub fn value(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.value.load(Ordering::Relaxed))
    }
}

/// A signed level that goes up and down — queue depths, buffer
/// occupancy, open-flow counts. All arithmetic saturates.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<GaugeCell>>,
}

impl Gauge {
    /// A no-op gauge (what a disabled [`Metrics`] hands out).
    pub fn disabled() -> Gauge {
        Gauge::default()
    }

    /// Whether recording actually lands anywhere.
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }

    /// Adds `n` (may be negative; saturating).
    #[inline]
    pub fn add(&self, n: i64) {
        if let Some(cell) = &self.cell {
            cell.add(n);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Overwrites the level.
    #[inline]
    pub fn set(&self, value: i64) {
        if let Some(cell) = &self.cell {
            cell.value.store(value, Ordering::Relaxed);
        }
    }

    /// Current level (0 for a disabled handle).
    pub fn value(&self) -> i64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.value.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram: values land in the first bucket whose
/// inclusive upper bound holds them, or the trailing overflow bucket.
/// Bounds are fixed at registration, so recording is lock-free.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    cell: Option<Arc<HistogramCell>>,
}

impl Histogram {
    /// A no-op histogram (what a disabled [`Metrics`] hands out).
    pub fn disabled() -> Histogram {
        Histogram::default()
    }

    /// Whether recording actually lands anywhere.
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(cell) = &self.cell {
            cell.record(value);
        }
    }

    /// Starts timing an interval: `None` when disabled, so the no-op
    /// path never calls `Instant::now()`. Close with
    /// [`Histogram::record_since`].
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        self.cell.as_ref().map(|_| Instant::now())
    }

    /// Records the nanoseconds elapsed since a [`Histogram::start`]
    /// that returned `Some`.
    #[inline]
    pub fn record_since(&self, started: Option<Instant>) {
        if let Some(t0) = started {
            self.record(t0.elapsed().as_nanos() as u64);
        }
    }

    /// Total of all recorded values (0 for a disabled handle).
    pub fn sum(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.sum.load(Ordering::Relaxed))
    }

    /// Number of recorded values (0 for a disabled handle).
    pub fn count(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// The `q`-quantile estimate from the fixed buckets (`0.5` = p50,
    /// `0.95` = p95): the inclusive upper bound of the bucket holding
    /// the target rank. `None` when disabled or empty; ranks in the
    /// overflow bucket report the largest bound — a lower bound on the
    /// true quantile, since values past it are unbounded.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let cell = self.cell.as_ref()?;
        let buckets: Vec<u64> = cell
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        crate::snapshot::quantile_from_buckets(&cell.bounds, &buckets, q)
    }
}

/// The registry handle instrumented code carries: cheap to clone,
/// either *enabled* (clones share one registry) or *disabled* (hands
/// out no-op instruments). Two handles compare equal when both are
/// disabled or both point at the same registry.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    registry: Option<Arc<Registry>>,
}

impl Metrics {
    /// A fresh, enabled registry.
    pub fn enabled() -> Metrics {
        Metrics {
            registry: Some(Arc::new(Registry {
                started: Instant::now(),
                instruments: Mutex::new(BTreeMap::new()),
                snapshot_seq: AtomicU64::new(0),
            })),
        }
    }

    /// The no-op handle: every instrument it hands out records nowhere.
    pub fn disabled() -> Metrics {
        Metrics::default()
    }

    /// Whether this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// The counter registered under `name`, registering it on first
    /// use. Idempotent: every call with the same name returns a handle
    /// onto the same cell.
    ///
    /// # Panics
    ///
    /// When `name` is already registered as a different instrument kind
    /// — a programming error, not a runtime condition.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(reg) = &self.registry else {
            return Counter::disabled();
        };
        let mut map = reg.instruments.lock().unwrap_or_else(|e| e.into_inner());
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Cell::Counter(Arc::new(CounterCell::default())));
        match cell {
            Cell::Counter(c) => Counter {
                cell: Some(Arc::clone(c)),
            },
            other => panic!(
                "metric `{name}` already registered as a {}, not a counter",
                other.kind()
            ),
        }
    }

    /// The gauge registered under `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// When `name` is already registered as a different instrument kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let Some(reg) = &self.registry else {
            return Gauge::disabled();
        };
        let mut map = reg.instruments.lock().unwrap_or_else(|e| e.into_inner());
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Cell::Gauge(Arc::new(GaugeCell::default())));
        match cell {
            Cell::Gauge(g) => Gauge {
                cell: Some(Arc::clone(g)),
            },
            other => panic!(
                "metric `{name}` already registered as a {}, not a gauge",
                other.kind()
            ),
        }
    }

    /// The histogram registered under `name`, registering it with
    /// `bounds` (inclusive upper bucket bounds, strictly increasing) on
    /// first use. Later calls keep the first registration's bounds.
    ///
    /// # Panics
    ///
    /// When `name` is already registered as a different instrument kind.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let Some(reg) = &self.registry else {
            return Histogram::disabled();
        };
        let mut map = reg.instruments.lock().unwrap_or_else(|e| e.into_inner());
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Cell::Histogram(Arc::new(HistogramCell::new(bounds))));
        match cell {
            Cell::Histogram(h) => Histogram {
                cell: Some(Arc::clone(h)),
            },
            other => panic!(
                "metric `{name}` already registered as a {}, not a histogram",
                other.kind()
            ),
        }
    }

    /// A point-in-time dump of every registered instrument, sorted by
    /// name. Empty (seq 0, elapsed 0) for a disabled handle.
    pub fn snapshot(&self) -> StatsSnapshot {
        let Some(reg) = &self.registry else {
            return StatsSnapshot::empty();
        };
        let seq = reg.snapshot_seq.fetch_add(1, Ordering::Relaxed) + 1;
        Metrics::dump(reg, seq)
    }

    /// [`Metrics::snapshot`] without advancing the snapshot sequence —
    /// for internal baselines (the [`Sampler`](crate::Sampler) takes one
    /// at start so its first emitted rate is window-relative) that must
    /// not perturb the `seq` numbering consumers see.
    pub fn peek(&self) -> StatsSnapshot {
        let Some(reg) = &self.registry else {
            return StatsSnapshot::empty();
        };
        let seq = reg.snapshot_seq.load(Ordering::Relaxed);
        Metrics::dump(reg, seq)
    }

    fn dump(reg: &Registry, seq: u64) -> StatsSnapshot {
        let elapsed_secs = reg.started.elapsed().as_secs_f64();
        let map = reg.instruments.lock().unwrap_or_else(|e| e.into_inner());
        let entries = map
            .iter()
            .map(|(name, cell)| {
                let value = match cell {
                    Cell::Counter(c) => MetricValue::Counter(c.value.load(Ordering::Relaxed)),
                    Cell::Gauge(g) => MetricValue::Gauge(g.value.load(Ordering::Relaxed)),
                    Cell::Histogram(h) => MetricValue::Histogram(HistogramSnapshot {
                        bounds: h.bounds.clone(),
                        buckets: h
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                        sum: h.sum.load(Ordering::Relaxed),
                        count: h.count.load(Ordering::Relaxed),
                    }),
                };
                (name.clone(), value)
            })
            .collect();
        StatsSnapshot {
            seq,
            elapsed_secs,
            entries,
        }
    }
}

impl PartialEq for Metrics {
    fn eq(&self, other: &Metrics) -> bool {
        match (&self.registry, &other.registry) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn disabled_handles_are_inert_and_free_of_state() {
        let m = Metrics::disabled();
        assert!(!m.is_enabled());
        let c = m.counter("x");
        let g = m.gauge("y");
        let h = m.histogram("z", DURATION_NS_BOUNDS);
        assert!(!c.is_enabled() && !g.is_enabled() && !h.is_enabled());
        c.add(5);
        g.set(9);
        h.record(100);
        assert_eq!(c.value(), 0);
        assert_eq!(g.value(), 0);
        assert_eq!((h.sum(), h.count()), (0, 0));
        assert!(h.start().is_none(), "no Instant::now() when disabled");
        let snap = m.snapshot();
        assert_eq!(snap.seq, 0);
        assert!(snap.entries.is_empty());
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let m = Metrics::enabled();
        let c = m.counter("sat");
        c.add(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.value(), u64::MAX);
        c.inc();
        assert_eq!(c.value(), u64::MAX);
    }

    #[test]
    fn gauge_saturates_at_both_ends() {
        let m = Metrics::enabled();
        let g = m.gauge("sat");
        g.set(i64::MAX - 1);
        g.add(10);
        assert_eq!(g.value(), i64::MAX);
        g.set(i64::MIN + 1);
        g.add(-10);
        assert_eq!(g.value(), i64::MIN);
    }

    #[test]
    fn clones_share_cells_and_names_are_idempotent() {
        let m = Metrics::enabled();
        let a = m.counter("shared");
        let b = m.counter("shared");
        let c = a.clone();
        a.inc();
        b.inc();
        c.add(3);
        assert_eq!(m.counter("shared").value(), 5);

        let g1 = m.gauge("depth");
        let g2 = m.gauge("depth");
        g1.inc();
        g1.inc();
        g2.dec();
        assert_eq!(g1.value(), 1);
    }

    #[test]
    fn concurrent_increments_all_land() {
        let m = Metrics::enabled();
        let c = m.counter("hot");
        let g = m.gauge("warm");
        thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                let g = g.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                        g.inc();
                        g.dec();
                    }
                });
            }
        });
        assert_eq!(c.value(), 80_000);
        assert_eq!(g.value(), 0, "balanced inc/dec cancels exactly");
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let m = Metrics::enabled();
        let h = m.histogram("lat", &[10, 100]);
        for v in [0, 10, 11, 100, 101, 5_000] {
            h.record(v);
        }
        let snap = m.snapshot();
        let MetricValue::Histogram(hs) = &snap.entries[0].1 else {
            panic!("expected histogram");
        };
        // ≤10 → bucket 0; 11..=100 → bucket 1; >100 → overflow.
        assert_eq!(hs.buckets, vec![2, 2, 2]);
        assert_eq!(hs.count, 6);
        assert_eq!(hs.sum, 5_222);
        assert_eq!(hs.bounds, vec![10, 100]);
    }

    #[test]
    fn histogram_sum_saturates() {
        let m = Metrics::enabled();
        let h = m.histogram("big", &[1]);
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_mismatch_panics_with_the_name() {
        let m = Metrics::enabled();
        let _ = m.counter("dual");
        let _ = m.gauge("dual");
    }

    #[test]
    fn snapshot_sequence_and_elapsed_advance() {
        let m = Metrics::enabled();
        m.counter("a").inc();
        let s1 = m.snapshot();
        let s2 = m.snapshot();
        assert_eq!(s1.seq, 1);
        assert_eq!(s2.seq, 2);
        assert!(s2.elapsed_secs >= s1.elapsed_secs);
    }

    #[test]
    fn equality_is_registry_identity() {
        let a = Metrics::enabled();
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, Metrics::enabled());
        assert_eq!(Metrics::disabled(), Metrics::disabled());
        assert_ne!(a, Metrics::disabled());
    }
}
