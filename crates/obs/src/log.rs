//! The one leveled stderr path for human-facing pipeline chatter —
//! warnings, notices, verbose diagnostics — replacing ad-hoc
//! `eprintln!`s so `--quiet` / `-v` / `FLOWZIP_LOG` govern everything.
//!
//! Levels nest: [`Level::Quiet`] keeps only warnings, [`Level::Normal`]
//! (the default) adds notices, [`Level::Verbose`] adds debug detail.
//! The level is a process-wide atomic — the CLI sets it once at
//! startup; library code only reads it.

use std::sync::atomic::{AtomicU8, Ordering};

/// How much of the leveled output to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Level {
    /// Warnings only (`--quiet`).
    Quiet = 0,
    /// Warnings and notices (the default).
    #[default]
    Normal = 1,
    /// Everything, including debug detail (`-v`).
    Verbose = 2,
}

impl Level {
    /// Parses a `FLOWZIP_LOG` value (`quiet`|`normal`|`verbose`, or
    /// `0`|`1`|`2`). Unknown values read as `None`.
    pub fn parse(name: &str) -> Option<Level> {
        match name.trim().to_ascii_lowercase().as_str() {
            "quiet" | "0" => Some(Level::Quiet),
            "normal" | "1" => Some(Level::Normal),
            "verbose" | "debug" | "2" => Some(Level::Verbose),
            _ => None,
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Normal as u8);

/// Sets the process-wide output level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current process-wide output level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Quiet,
        2 => Level::Verbose,
        _ => Level::Normal,
    }
}

/// Whether output at `at` would currently be emitted.
pub fn enabled(at: Level) -> bool {
    at <= level()
}

/// Initializes the level from the `FLOWZIP_LOG` environment variable,
/// if set and parseable. Returns the resulting level either way.
pub fn init_from_env() -> Level {
    if let Some(l) = std::env::var("FLOWZIP_LOG")
        .ok()
        .and_then(|v| Level::parse(&v))
    {
        set_level(l);
    }
    level()
}

/// Emits a warning to stderr — shown at every level (a warning the
/// user asked to suppress is still a warning).
pub fn warn(msg: &str) {
    eprintln!("warning: {msg}");
}

/// Emits a notice to stderr, unless quiet.
pub fn info(msg: &str) {
    if enabled(Level::Normal) {
        eprintln!("{msg}");
    }
}

/// Emits verbose detail to stderr, only with `-v`.
pub fn debug(msg: &str) {
    if enabled(Level::Verbose) {
        eprintln!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_names_and_digits() {
        assert_eq!(Level::parse("quiet"), Some(Level::Quiet));
        assert_eq!(Level::parse("NORMAL"), Some(Level::Normal));
        assert_eq!(Level::parse(" verbose "), Some(Level::Verbose));
        assert_eq!(Level::parse("debug"), Some(Level::Verbose));
        assert_eq!(Level::parse("0"), Some(Level::Quiet));
        assert_eq!(Level::parse("2"), Some(Level::Verbose));
        assert_eq!(Level::parse("loud"), None);
    }

    #[test]
    fn levels_nest() {
        // Serialized within one test: LEVEL is process-global state.
        set_level(Level::Quiet);
        assert!(!enabled(Level::Normal));
        assert!(!enabled(Level::Verbose));
        assert!(enabled(Level::Quiet));
        set_level(Level::Verbose);
        assert!(enabled(Level::Normal));
        assert!(enabled(Level::Verbose));
        set_level(Level::Normal);
        assert!(enabled(Level::Normal));
        assert!(!enabled(Level::Verbose));
        assert_eq!(level(), Level::Normal);
    }
}
