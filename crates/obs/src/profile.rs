//! Span timing to chrome://tracing trace-event JSON: every pipeline
//! stage records named intervals on a named per-thread track, and the
//! run dumps as a timeline `chrome://tracing` or [Perfetto]
//! (`ui.perfetto.dev`) opens directly.
//!
//! [Perfetto]: https://ui.perfetto.dev
//!
//! Like [`Metrics`](crate::Metrics), the handle is an enum-dispatch
//! no-op when disabled: spans on a disabled profiler never call
//! `Instant::now()` and never allocate.

use crate::json::json_escape;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

#[derive(Debug)]
struct Event {
    name: &'static str,
    track: u64,
    ts_us: u64,
    dur_us: u64,
}

#[derive(Debug)]
struct ProfilerInner {
    started: Instant,
    events: Mutex<Vec<Event>>,
    /// `(tid, display name)` in registration order.
    tracks: Mutex<Vec<String>>,
}

/// The span-timing recorder: hands out named [`Track`]s whose
/// [`Span`]s record complete (`"ph":"X"`) trace events. Cheap to
/// clone; clones share the event buffer.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    inner: Option<Arc<ProfilerInner>>,
}

impl Profiler {
    /// A fresh, recording profiler.
    pub fn enabled() -> Profiler {
        Profiler {
            inner: Some(Arc::new(ProfilerInner {
                started: Instant::now(),
                events: Mutex::new(Vec::new()),
                tracks: Mutex::new(Vec::new()),
            })),
        }
    }

    /// The no-op handle.
    pub fn disabled() -> Profiler {
        Profiler::default()
    }

    /// Whether spans actually record anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers a display-named track (one timeline row — typically
    /// one per thread: `shard-0`, `router-1`, `main`). Tracks are
    /// cheap; register one per worker rather than sharing, so spans on
    /// a row never overlap.
    pub fn track(&self, name: &str) -> Track {
        let Some(inner) = &self.inner else {
            return Track::default();
        };
        let mut tracks = inner.tracks.lock().unwrap_or_else(|e| e.into_inner());
        tracks.push(name.to_string());
        Track {
            inner: Some((Arc::clone(inner), tracks.len() as u64)),
        }
    }

    /// Serializes everything recorded so far as a chrome://tracing
    /// trace-event JSON object (`{"displayTimeUnit":"ms",
    /// "traceEvents":[…]}`): one metadata event naming each track,
    /// then one complete event per span, microsecond timestamps.
    pub fn to_trace_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut any = false;
        if let Some(inner) = &self.inner {
            let tracks = inner.tracks.lock().unwrap_or_else(|e| e.into_inner());
            for (i, name) in tracks.iter().enumerate() {
                if any {
                    out.push(',');
                }
                any = true;
                let _ = write!(
                    out,
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    i as u64 + 1,
                    json_escape(name)
                );
            }
            let events = inner.events.lock().unwrap_or_else(|e| e.into_inner());
            for e in events.iter() {
                if any {
                    out.push(',');
                }
                any = true;
                let _ = write!(
                    out,
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"{}\"}}",
                    e.track,
                    e.ts_us,
                    e.dur_us,
                    json_escape(e.name)
                );
            }
        }
        out.push_str("]}");
        out
    }

    /// Writes [`Profiler::to_trace_json`] to a file.
    ///
    /// # Errors
    ///
    /// Any I/O error creating or writing the file.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_trace_json())
    }
}

impl PartialEq for Profiler {
    fn eq(&self, other: &Profiler) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// One timeline row. Cheap to clone (clones share the row).
#[derive(Debug, Clone, Default)]
pub struct Track {
    inner: Option<(Arc<ProfilerInner>, u64)>,
}

impl Track {
    /// Opens a span that records on drop. Span names must be static
    /// — they are batch-frequency hot-path values and must not
    /// allocate.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            rec: self
                .inner
                .as_ref()
                .map(|(inner, tid)| (Arc::clone(inner), *tid, name, Instant::now())),
        }
    }
}

/// A live interval on a [`Track`]; records a complete trace event when
/// dropped.
#[derive(Debug)]
#[must_use = "a span records its interval when dropped; binding it to `_` drops immediately"]
pub struct Span {
    rec: Option<(Arc<ProfilerInner>, u64, &'static str, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((inner, track, name, t0)) = self.rec.take() else {
            return;
        };
        let ts_us = t0.duration_since(inner.started).as_micros() as u64;
        let dur_us = t0.elapsed().as_micros() as u64;
        let mut events = inner.events.lock().unwrap_or_else(|e| e.into_inner());
        events.push(Event {
            name,
            track,
            ts_us,
            dur_us,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::is_valid_json;

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = Profiler::disabled();
        assert!(!p.is_enabled());
        let t = p.track("main");
        drop(t.span("work"));
        assert_eq!(
            p.to_trace_json(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }

    #[test]
    fn spans_become_complete_events_on_named_tracks() {
        let p = Profiler::enabled();
        let main = p.track("main");
        let shard = p.track("shard-0");
        {
            let _outer = main.span("run");
            drop(shard.span("accumulate"));
            drop(shard.span("encode"));
        }
        let json = p.to_trace_json();
        assert!(is_valid_json(&json), "{json}");
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
        // Two track-name metadata events plus three complete events.
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 3);
        assert!(json.contains("\"args\":{\"name\":\"shard-0\"}"));
        assert!(json.contains("\"name\":\"accumulate\""));
        // The outer span closed last, so it serializes with a duration
        // covering the inner two.
        assert!(json.contains("\"name\":\"run\""));
    }

    #[test]
    fn clones_share_the_event_buffer() {
        let p = Profiler::enabled();
        let t = p.track("t");
        let p2 = p.clone();
        drop(t.span("a"));
        assert_eq!(p2.to_trace_json().matches("\"ph\":\"X\"").count(), 1);
        assert_eq!(p, p2);
        assert_ne!(p, Profiler::enabled());
        assert_eq!(Profiler::disabled(), Profiler::disabled());
    }

    #[test]
    fn write_to_round_trips_through_a_file() {
        let p = Profiler::enabled();
        drop(p.track("main").span("whole"));
        let path = std::env::temp_dir().join("flowzip-obs-profile-test.json");
        p.write_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(is_valid_json(&text), "{text}");
        assert!(text.contains("traceEvents"));
    }
}
