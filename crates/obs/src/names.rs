//! Conventional instrument names the flowzip pipeline registers, in
//! one place so emitters (engine, io, container) and consumers
//! (snapshots, tests, dashboards) cannot drift on spelling.
//!
//! Names are dotted paths. Per-shard instruments embed the shard index:
//! `engine.shard.3.queue_depth`.

/// Packets accepted by shard accumulators (counter).
pub const ENGINE_PACKETS: &str = "engine.packets";
/// Batches processed by shard accumulators (counter).
pub const ENGINE_BATCHES: &str = "engine.batches";
/// Flows force-closed by idle eviction, across shards (counter).
pub const ENGINE_EVICTED_FLOWS: &str = "engine.evicted_flows";
/// Nanoseconds routing workers spent blocked waiting for their
/// delivery ticket (histogram; parallel routing only).
pub const ROUTER_TICKET_WAIT_NS: &str = "engine.router.ticket_wait_ns";
/// Nanoseconds of the serial container-serialization tail (counter).
pub const CONTAINER_SERIALIZE_NS: &str = "container.serialize_ns";
/// Archive sections written (counter).
pub const CONTAINER_SECTIONS: &str = "container.sections";
/// Raw bytes reader threads pulled off disk (counter).
pub const IO_READER_BYTES: &str = "io.reader.bytes";
/// Decoded batches reader threads handed over (counter).
pub const IO_READER_BATCHES: &str = "io.reader.batches";
/// Nanoseconds the consuming pipeline spent blocked on input (counter).
pub const IO_READ_WAIT_NS: &str = "io.read_wait_ns";
/// Chunks sitting in the prefetch hand-off buffer right now (gauge).
pub const IO_PREFETCH_OCCUPANCY: &str = "io.prefetch.occupancy";
/// Per-event read-wait stalls, nanoseconds each (histogram; feeds the
/// p95 read-wait figure in the human stats one-liner).
pub const IO_READ_WAIT_HIST_NS: &str = "io.read_wait.hist_ns";

/// Flows that finished with a derived telemetry row (counter;
/// `--telemetry` runs only).
pub const TELEMETRY_FLOWS: &str = "telemetry.flows";
/// Retransmitted segments detected across finished flows, fast and
/// timeout classes combined (counter; `--telemetry` runs only).
pub const TELEMETRY_RETRANSMISSIONS: &str = "telemetry.retransmissions";
/// RTT samples harvested from handshakes and the ack clock (counter;
/// `--telemetry` runs only).
pub const TELEMETRY_RTT_SAMPLES: &str = "telemetry.rtt_samples";
/// Measured per-flow RTT estimates, microseconds (histogram;
/// `--telemetry` runs only — feeds the p95 RTT figure in the human
/// stats one-liner).
pub const TELEMETRY_RTT_US: &str = "telemetry.rtt_us";

/// Packets a serve session dropped under overload — the ingest queue
/// was full and the drop-and-count policy discarded the batch (counter;
/// `flowzip serve` runs only).
pub const SERVE_DROPPED_PACKETS: &str = "serve.dropped_packets";
/// Archive windows a serve session has rotated out (counter).
pub const SERVE_WINDOWS: &str = "serve.windows";
/// Wall-clock age of the window currently being filled, seconds
/// (gauge; resets to 0 at each rotation).
pub const SERVE_WINDOW_AGE_SECS: &str = "serve.window_age_secs";
/// Batches queued between the serve ingest thread and the engine right
/// now (gauge).
pub const SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";

/// Sections in the archive a query planned over (counter).
pub const QUERY_SECTIONS_TOTAL: &str = "query.sections_total";
/// Sections a query actually decoded (counter).
pub const QUERY_SECTIONS_SCANNED: &str = "query.sections_scanned";
/// Sections a query skipped via the metadata time range (counter).
pub const QUERY_SECTIONS_SKIPPED_TIME: &str = "query.sections_skipped_time";
/// Sections a query skipped via the flow-key Bloom filter (counter).
pub const QUERY_SECTIONS_SKIPPED_BLOOM: &str = "query.sections_skipped_bloom";
/// Flow records that matched a query (counter).
pub const QUERY_FLOWS_MATCHED: &str = "query.flows_matched";
/// Packets a query's result expanded to (counter).
pub const QUERY_PACKETS: &str = "query.packets";

/// Prefix every per-shard instrument name starts with.
pub const SHARD_PREFIX: &str = "engine.shard.";
/// Suffix of per-shard queue-depth gauges.
pub const QUEUE_DEPTH_SUFFIX: &str = ".queue_depth";
/// Suffix of per-shard active-flow gauges.
pub const ACTIVE_FLOWS_SUFFIX: &str = ".active_flows";

/// Batches queued on shard `i`'s bounded channel right now (gauge).
pub fn shard_queue_depth(i: usize) -> String {
    format!("{SHARD_PREFIX}{i}{QUEUE_DEPTH_SUFFIX}")
}

/// Open flows in shard `i`'s accumulator right now (gauge).
pub fn shard_active_flows(i: usize) -> String {
    format!("{SHARD_PREFIX}{i}{ACTIVE_FLOWS_SUFFIX}")
}

/// Per-batch accumulate time on shard `i` (histogram, nanoseconds).
pub fn shard_accumulate_ns(i: usize) -> String {
    format!("{SHARD_PREFIX}{i}.accumulate_ns")
}

/// Finalize/encode time on shard `i` (counter, nanoseconds).
pub fn shard_encode_ns(i: usize) -> String {
    format!("{SHARD_PREFIX}{i}.encode_ns")
}

/// Parses the shard index out of a per-shard instrument name with the
/// given suffix, e.g. `engine.shard.3.queue_depth` → `Some(3)`.
pub fn shard_index(name: &str, suffix: &str) -> Option<usize> {
    name.strip_prefix(SHARD_PREFIX)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_names_round_trip_their_index() {
        assert_eq!(shard_queue_depth(3), "engine.shard.3.queue_depth");
        assert_eq!(
            shard_index(&shard_queue_depth(3), QUEUE_DEPTH_SUFFIX),
            Some(3)
        );
        assert_eq!(
            shard_index(&shard_active_flows(0), ACTIVE_FLOWS_SUFFIX),
            Some(0)
        );
        assert_eq!(
            shard_index("engine.shard.x.queue_depth", QUEUE_DEPTH_SUFFIX),
            None
        );
        assert_eq!(shard_index(ENGINE_PACKETS, QUEUE_DEPTH_SUFFIX), None);
    }
}
