//! The workspace's one hand-rolled JSON emission helper (the build is
//! dependency-free, so every report serializes through here — the
//! engine report, the unified pipeline report, metric snapshots and the
//! profiler dump all share the same escaping and float formatting and
//! therefore cannot drift).

use std::fmt::Write as _;

/// Escapes a string for a JSON string literal (quote, backslash,
/// control characters — `str::escape_default` is *not* JSON: it emits
/// `\'` and `\u{…}`, which JSON parsers reject).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Minimal ordered-field JSON object writer. `pretty` (the report
/// style) puts each field on its own two-space-indented line; compact
/// (the JSON-lines style) emits one line with no whitespace.
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    any: bool,
    pretty: bool,
}

impl JsonObject {
    /// Starts a pretty (multi-line, two-space-indented) object — the
    /// shape `Report::to_json` has always emitted.
    pub fn pretty() -> JsonObject {
        JsonObject {
            buf: String::from("{"),
            any: false,
            pretty: true,
        }
    }

    /// Starts a compact single-line object — the JSON-lines shape.
    pub fn compact() -> JsonObject {
        JsonObject {
            buf: String::from("{"),
            any: false,
            pretty: false,
        }
    }

    fn key(&mut self, key: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        if self.pretty {
            self.buf.push_str("\n  ");
        }
        self.buf.push('"');
        self.buf.push_str(&json_escape(key));
        self.buf.push_str(if self.pretty { "\": " } else { "\":" });
    }

    /// Adds a string field (escaped).
    pub fn str(&mut self, key: &str, value: &str) {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&json_escape(value));
        self.buf.push('"');
    }

    /// Adds an array-of-strings field (each escaped).
    pub fn str_array(&mut self, key: &str, values: &[String]) {
        self.key(key);
        self.buf.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.buf.push_str(if self.pretty { ", " } else { "," });
            }
            self.buf.push('"');
            self.buf.push_str(&json_escape(v));
            self.buf.push('"');
        }
        self.buf.push(']');
    }

    /// Adds an unsigned integer field.
    pub fn num(&mut self, key: &str, value: u64) {
        self.key(key);
        let _ = write!(self.buf, "{value}");
    }

    /// Adds a signed integer field.
    pub fn int(&mut self, key: &str, value: i64) {
        self.key(key);
        let _ = write!(self.buf, "{value}");
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) {
        self.key(key);
        let _ = write!(self.buf, "{value}");
    }

    /// Adds a float field with six decimal places (the timing style).
    pub fn f6(&mut self, key: &str, value: f64) {
        self.key(key);
        let _ = write!(self.buf, "{value:.6}");
    }

    /// Adds a float field with two decimal places (the MB/s style).
    pub fn f2(&mut self, key: &str, value: f64) {
        self.key(key);
        let _ = write!(self.buf, "{value:.2}");
    }

    /// Adds a float field rounded to an integer (the packets/s style).
    pub fn f0(&mut self, key: &str, value: f64) {
        self.key(key);
        let _ = write!(self.buf, "{value:.0}");
    }

    /// Adds a pre-serialized JSON value verbatim — nested objects and
    /// arrays the caller formatted.
    pub fn raw(&mut self, key: &str, value: &str) {
        self.key(key);
        self.buf.push_str(value);
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push_str(if self.pretty { "\n}" } else { "}" });
        self.buf
    }
}

/// Validates that `s` is one complete JSON value — a tiny
/// recursive-descent checker for tests pinning emitted schemas (the
/// workspace has no serde to parse with). Accepts exactly the JSON
/// grammar: objects, arrays, strings with escapes, numbers, `true`,
/// `false`, `null`.
pub fn is_valid_json(s: &str) -> bool {
    let bytes = s.as_bytes();
    let mut pos = 0;
    if !skip_value(bytes, &mut pos) {
        return false;
    }
    skip_ws(bytes, &mut pos);
    pos == bytes.len()
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn skip_value(b: &[u8], pos: &mut usize) -> bool {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => skip_delimited(b, pos, b'}', true),
        Some(b'[') => skip_delimited(b, pos, b']', false),
        Some(b'"') => skip_string(b, pos),
        Some(b't') => skip_literal(b, pos, b"true"),
        Some(b'f') => skip_literal(b, pos, b"false"),
        Some(b'n') => skip_literal(b, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => skip_number(b, pos),
        _ => false,
    }
}

fn skip_delimited(b: &[u8], pos: &mut usize, close: u8, keyed: bool) -> bool {
    *pos += 1; // opening brace/bracket
    skip_ws(b, pos);
    if b.get(*pos) == Some(&close) {
        *pos += 1;
        return true;
    }
    loop {
        if keyed {
            skip_ws(b, pos);
            if !skip_string(b, pos) {
                return false;
            }
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b':') {
                return false;
            }
            *pos += 1;
        }
        if !skip_value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(&c) if c == close => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn skip_string(b: &[u8], pos: &mut usize) -> bool {
    if b.get(*pos) != Some(&b'"') {
        return false;
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return true;
            }
            b'\\' => {
                match b.get(*pos + 1) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                    Some(b'u') => {
                        let hex = b.get(*pos + 2..*pos + 6);
                        match hex {
                            Some(h) if h.iter().all(u8::is_ascii_hexdigit) => *pos += 6,
                            _ => return false,
                        }
                    }
                    _ => return false,
                };
            }
            0x00..=0x1f => return false,
            _ => *pos += 1,
        }
    }
    false
}

fn skip_literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if b.len() - *pos >= lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn skip_number(b: &[u8], pos: &mut usize) -> bool {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let from = *pos;
        while matches!(b.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        *pos > from
    };
    if !digits(b, pos) {
        return false;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return false;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return false;
        }
    }
    *pos > start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_backslashes_and_controls() {
        assert_eq!(json_escape(r#"a"b"#), r#"a\"b"#);
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb"), "a\\u000ab");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn pretty_object_matches_the_report_shape() {
        let mut j = JsonObject::pretty();
        j.str("mode", "compress");
        j.num("packets", 7);
        j.f6("elapsed_secs", 0.25);
        let out = j.finish();
        assert_eq!(
            out,
            "{\n  \"mode\": \"compress\",\n  \"packets\": 7,\n  \"elapsed_secs\": 0.250000\n}"
        );
        assert!(is_valid_json(&out));
    }

    #[test]
    fn compact_object_is_one_line() {
        let mut j = JsonObject::compact();
        j.str("type", "flowzip.stats");
        j.int("depth", -3);
        j.str_array("names", &["a".into(), "b".into()]);
        let out = j.finish();
        assert_eq!(
            out,
            r#"{"type":"flowzip.stats","depth":-3,"names":["a","b"]}"#
        );
        assert!(!out.contains('\n'));
        assert!(is_valid_json(&out));
    }

    #[test]
    fn empty_objects_are_valid() {
        assert_eq!(JsonObject::compact().finish(), "{}");
        assert_eq!(JsonObject::pretty().finish(), "{\n}");
        assert!(is_valid_json("{}"));
        assert!(is_valid_json("{\n}"));
    }

    #[test]
    fn validator_accepts_real_json() {
        for good in [
            "{}",
            "[]",
            "0",
            "-1.5e-3",
            "\"x\\u00e9\"",
            "true",
            "null",
            r#"{"a":[1,2,{"b":null}],"c":"\n"}"#,
            " { \"a\" : 1 } ",
        ] {
            assert!(is_valid_json(good), "{good}");
        }
    }

    #[test]
    fn validator_rejects_broken_json() {
        for bad in [
            "",
            "{",
            "}",
            "{]",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1 2]",
            "01x",
            "\"unterminated",
            "{\"a\":1} extra",
            "{'a':1}",
            "nul",
            "+1",
            "1.",
        ] {
            assert!(!is_valid_json(bad), "{bad}");
        }
    }
}
