//! Observability for the flowzip pipeline: metrics, live snapshots,
//! span profiling, shared JSON formatting, and leveled logging —
//! dependency-free, like the rest of the workspace.
//!
//! The source paper is a *performance analysis*: knowing where a
//! flow-clustering compressor spends its time is the contribution. This
//! crate gives every stage of the reproduction a way to say so while it
//! runs, not just in a post-hoc report:
//!
//! * [`Metrics`] — a lock-free registry of named atomic
//!   [`Counter`]s, [`Gauge`]s and fixed-bucket [`Histogram`]s. The
//!   handle is an enum-dispatch recorder: a *disabled* handle hands out
//!   no-op instruments whose hot-path cost is one branch on a `None`,
//!   so instrumented code needs no `cfg` or generics to compile to
//!   near-zero cost when observability is off.
//! * [`StatsSnapshot`] + [`Sampler`] — point-in-time dumps of every
//!   instrument, and a background thread emitting them periodically as
//!   JSON-lines or a human one-liner (the live-stats plumbing a future
//!   `flowzip serve` sits on).
//! * [`Profiler`] — named per-thread tracks of timed spans, dumped as
//!   chrome://tracing trace-event JSON so a run opens as a
//!   flamegraph-style timeline in `chrome://tracing` or Perfetto.
//! * [`json`] — the one hand-rolled JSON escaping/formatting helper
//!   every report in the workspace shares, so float formatting and
//!   string escaping cannot drift between emitters.
//! * [`log`] — a leveled stderr path (`FLOWZIP_LOG`, `--quiet`/`-v`)
//!   for warnings, notices and snapshot output.
//!
//! Instrument names are dotted paths; the conventional ones the
//! pipeline registers live in [`names`].

#![warn(missing_docs)]

pub mod json;
pub mod log;
pub mod metrics;
pub mod names;
pub mod profile;
pub mod snapshot;

pub use metrics::{Counter, Gauge, Histogram, Metrics, DURATION_NS_BOUNDS, RTT_US_BOUNDS};
pub use profile::{Profiler, Span, Track};
pub use snapshot::{
    HistogramSnapshot, MetricValue, Sampler, SnapshotFormat, StatsSink, StatsSnapshot,
};
