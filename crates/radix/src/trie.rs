//! Path-compressed binary trie (PATRICIA) for IPv4 longest-prefix match.
//!
//! Nodes live in an arena (`Vec`), so every node has a stable index from
//! which traced operations derive a deterministic synthetic memory
//! address: `BASE + index * NODE_SIZE + field offset`. That address
//! stream, fed to the cache simulator, is this workspace's analogue of
//! running the instrumented Netbench/Commbench binaries of §6.

use crate::trace::{AccessKind, AccessSink, NullSink};
use std::net::Ipv4Addr;

/// Synthetic base address of the node arena (an arbitrary, page-aligned
/// constant well away from 0).
pub const ARENA_BASE: u64 = 0x1000_0000;
/// Synthetic size of one trie node: two child pointers, prefix, length,
/// value pointer — 32 bytes, a realistic C `struct radix_node`.
pub const NODE_SIZE: u64 = 32;

const OFF_HEADER: u64 = 0; // prefix + prefix_len word
const OFF_VALUE: u64 = 8; // value pointer
const OFF_CHILD: [u64; 2] = [16, 24];

#[derive(Debug, Clone)]
struct Node<T> {
    /// Full prefix bits from the root, left-aligned, masked to
    /// `prefix_len`.
    prefix: u32,
    prefix_len: u8,
    children: [Option<u32>; 2],
    value: Option<T>,
}

impl<T> Node<T> {
    fn new(prefix: u32, prefix_len: u8) -> Node<T> {
        Node {
            prefix,
            prefix_len,
            children: [None, None],
            value: None,
        }
    }
}

/// Longest-prefix-match routing table over IPv4 prefixes.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct RadixTable<T> {
    nodes: Vec<Option<Node<T>>>,
    free: Vec<u32>,
    routes: usize,
}

impl<T> Default for RadixTable<T> {
    fn default() -> Self {
        RadixTable::new()
    }
}

#[inline]
fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len as u32)
    }
}

#[inline]
fn bit_at(addr: u32, i: u8) -> usize {
    ((addr >> (31 - i as u32)) & 1) as usize
}

#[inline]
fn common_len(a: u32, b: u32) -> u8 {
    (a ^ b).leading_zeros().min(32) as u8
}

impl<T> RadixTable<T> {
    /// Creates an empty table (with a valueless root node).
    pub fn new() -> RadixTable<T> {
        RadixTable {
            nodes: vec![Some(Node::new(0, 0))],
            free: Vec::new(),
            routes: 0,
        }
    }

    /// Number of routes (prefixes with values) stored.
    pub fn len(&self) -> usize {
        self.routes
    }

    /// `true` when no routes are stored.
    pub fn is_empty(&self) -> bool {
        self.routes == 0
    }

    /// Number of live arena nodes, including internal ones — the memory
    /// footprint the cache simulator models.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    fn alloc(&mut self, node: Node<T>) -> u32 {
        if let Some(id) = self.free.pop() {
            self.nodes[id as usize] = Some(node);
            id
        } else {
            self.nodes.push(Some(node));
            (self.nodes.len() - 1) as u32
        }
    }

    fn node(&self, id: u32) -> &Node<T> {
        self.nodes[id as usize]
            .as_ref()
            .expect("live node id — arena invariant")
    }

    fn node_mut(&mut self, id: u32) -> &mut Node<T> {
        self.nodes[id as usize]
            .as_mut()
            .expect("live node id — arena invariant")
    }

    /// Synthetic address of a node field.
    fn addr(id: u32, off: u64) -> u64 {
        ARENA_BASE + id as u64 * NODE_SIZE + off
    }

    /// Inserts a route, returning the previous value for that exact
    /// prefix if any. The address is masked to `prefix_len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `prefix_len > 32`.
    pub fn insert(&mut self, prefix: Ipv4Addr, prefix_len: u8, value: T) -> Option<T> {
        self.traced_insert(prefix, prefix_len, value, &mut NullSink)
    }

    /// [`RadixTable::insert`] with memory-access tracing.
    ///
    /// # Panics
    ///
    /// Panics if `prefix_len > 32`.
    pub fn traced_insert<S: AccessSink>(
        &mut self,
        prefix: Ipv4Addr,
        prefix_len: u8,
        value: T,
        sink: &mut S,
    ) -> Option<T> {
        assert!(prefix_len <= 32, "ipv4 prefix length is at most 32");
        let p = u32::from(prefix) & mask(prefix_len);
        let mut cur = 0u32;
        loop {
            sink.access(AccessKind::Read, Self::addr(cur, OFF_HEADER));
            let cur_len = self.node(cur).prefix_len;
            if cur_len == prefix_len {
                sink.access(AccessKind::Write, Self::addr(cur, OFF_VALUE));
                let old = self.node_mut(cur).value.replace(value);
                if old.is_none() {
                    self.routes += 1;
                }
                return old;
            }
            let b = bit_at(p, cur_len);
            sink.access(AccessKind::Read, Self::addr(cur, OFF_CHILD[b]));
            match self.node(cur).children[b] {
                None => {
                    let mut leaf = Node::new(p, prefix_len);
                    leaf.value = Some(value);
                    let id = self.alloc(leaf);
                    sink.access(AccessKind::Write, Self::addr(id, OFF_HEADER));
                    sink.access(AccessKind::Write, Self::addr(cur, OFF_CHILD[b]));
                    self.node_mut(cur).children[b] = Some(id);
                    self.routes += 1;
                    return None;
                }
                Some(child) => {
                    sink.access(AccessKind::Read, Self::addr(child, OFF_HEADER));
                    let (cp, cl) = {
                        let c = self.node(child);
                        (c.prefix, c.prefix_len)
                    };
                    let shared = common_len(p, cp).min(prefix_len).min(cl);
                    if shared == cl {
                        // Child's prefix fully matches ours so far: descend.
                        cur = child;
                        continue;
                    }
                    if shared == prefix_len {
                        // New prefix sits between cur and child.
                        let mut mid = Node::new(p, prefix_len);
                        mid.value = Some(value);
                        mid.children[bit_at(cp, prefix_len)] = Some(child);
                        let id = self.alloc(mid);
                        sink.access(AccessKind::Write, Self::addr(id, OFF_HEADER));
                        sink.access(AccessKind::Write, Self::addr(cur, OFF_CHILD[b]));
                        self.node_mut(cur).children[b] = Some(id);
                        self.routes += 1;
                        return None;
                    }
                    // Fork: internal node at the divergence point.
                    let fork_prefix = p & mask(shared);
                    let mut fork = Node::new(fork_prefix, shared);
                    fork.children[bit_at(cp, shared)] = Some(child);
                    let mut leaf = Node::new(p, prefix_len);
                    leaf.value = Some(value);
                    let leaf_id = self.alloc(leaf);
                    fork.children[bit_at(p, shared)] = Some(leaf_id);
                    let fork_id = self.alloc(fork);
                    sink.access(AccessKind::Write, Self::addr(leaf_id, OFF_HEADER));
                    sink.access(AccessKind::Write, Self::addr(fork_id, OFF_HEADER));
                    sink.access(AccessKind::Write, Self::addr(cur, OFF_CHILD[b]));
                    self.node_mut(cur).children[b] = Some(fork_id);
                    self.routes += 1;
                    return None;
                }
            }
        }
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<&T> {
        self.traced_lookup(addr, &mut NullSink).0
    }

    /// LPM lookup emitting one access per touched field; also returns the
    /// number of nodes visited ("the number of visited nodes is
    /// different" is exactly the §6.1 effect under study).
    pub fn traced_lookup<S: AccessSink>(&self, addr: Ipv4Addr, sink: &mut S) -> (Option<&T>, u32) {
        let a = u32::from(addr);
        let mut cur = 0u32;
        let mut best: Option<u32> = None;
        let mut visited = 0u32;
        loop {
            visited += 1;
            sink.access(AccessKind::Read, Self::addr(cur, OFF_HEADER));
            let node = self.node(cur);
            sink.access(AccessKind::Read, Self::addr(cur, OFF_VALUE));
            if node.value.is_some() {
                best = Some(cur);
            }
            if node.prefix_len >= 32 {
                break;
            }
            let b = bit_at(a, node.prefix_len);
            sink.access(AccessKind::Read, Self::addr(cur, OFF_CHILD[b]));
            match node.children[b] {
                Some(child) => {
                    let c = self.node(child);
                    sink.access(AccessKind::Read, Self::addr(child, OFF_HEADER));
                    if a & mask(c.prefix_len) == c.prefix {
                        cur = child;
                    } else {
                        break;
                    }
                }
                None => break,
            }
        }
        (best.and_then(|id| self.node(id).value.as_ref()), visited)
    }

    /// Exact-match fetch of a route's value.
    pub fn get(&self, prefix: Ipv4Addr, prefix_len: u8) -> Option<&T> {
        let p = u32::from(prefix) & mask(prefix_len);
        let mut cur = 0u32;
        loop {
            let node = self.node(cur);
            if node.prefix_len == prefix_len && node.prefix == p {
                return node.value.as_ref();
            }
            if node.prefix_len >= prefix_len {
                return None;
            }
            let b = bit_at(p, node.prefix_len);
            match node.children[b] {
                Some(child) => {
                    let c = self.node(child);
                    let l = c.prefix_len.min(prefix_len);
                    if p & mask(l) != c.prefix & mask(l) {
                        return None;
                    }
                    cur = child;
                }
                None => return None,
            }
        }
    }

    /// Removes a route by exact prefix, re-compressing the path, and
    /// returns its value.
    pub fn remove(&mut self, prefix: Ipv4Addr, prefix_len: u8) -> Option<T> {
        self.traced_remove(prefix, prefix_len, &mut NullSink)
    }

    /// [`RadixTable::remove`] with memory-access tracing — this is what
    /// makes the NAT benchmark "release memory" per §6.2.
    pub fn traced_remove<S: AccessSink>(
        &mut self,
        prefix: Ipv4Addr,
        prefix_len: u8,
        sink: &mut S,
    ) -> Option<T> {
        let p = u32::from(prefix) & mask(prefix_len);
        // Find the node and its path.
        let mut path: Vec<(u32, usize)> = Vec::new(); // (parent, branch)
        let mut cur = 0u32;
        loop {
            sink.access(AccessKind::Read, Self::addr(cur, OFF_HEADER));
            let node = self.node(cur);
            if node.prefix_len == prefix_len && node.prefix == p {
                break;
            }
            if node.prefix_len >= prefix_len {
                return None;
            }
            let b = bit_at(p, node.prefix_len);
            sink.access(AccessKind::Read, Self::addr(cur, OFF_CHILD[b]));
            match node.children[b] {
                Some(child) => {
                    let c = self.node(child);
                    let l = c.prefix_len.min(prefix_len);
                    if p & mask(l) != c.prefix & mask(l) {
                        return None;
                    }
                    path.push((cur, b));
                    cur = child;
                }
                None => return None,
            }
        }
        sink.access(AccessKind::Write, Self::addr(cur, OFF_VALUE));
        let old = self.node_mut(cur).value.take()?;
        self.routes -= 1;

        // Re-compress upward: drop childless valueless nodes, splice
        // single-child valueless nodes (never the root).
        let mut target = cur;
        while target != 0 {
            let (kids, has_value) = {
                let n = self.node(target);
                (n.children.iter().flatten().count(), n.value.is_some())
            };
            if has_value || kids > 1 {
                break;
            }
            let (parent, branch) = match path.pop() {
                Some(pb) => pb,
                None => break,
            };
            let only_child = self.node(target).children.iter().flatten().next().copied();
            sink.access(AccessKind::Write, Self::addr(parent, OFF_CHILD[branch]));
            self.node_mut(parent).children[branch] = only_child;
            self.nodes[target as usize] = None;
            self.free.push(target);
            if only_child.is_some() {
                break; // spliced, parent structure unchanged above
            }
            target = parent;
        }
        Some(old)
    }

    /// Iterates `(prefix, prefix_len, &value)` over all routes in
    /// depth-first order.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4Addr, u8, &T)> {
        let mut stack = vec![0u32];
        let mut out = Vec::new();
        while let Some(id) = stack.pop() {
            let n = self.node(id);
            if let Some(v) = &n.value {
                out.push((Ipv4Addr::from(n.prefix), n.prefix_len, v));
            }
            for c in n.children.iter().flatten() {
                stack.push(*c);
            }
        }
        out.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CountingSink, RecordingSink};

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn empty_table_finds_nothing() {
        let t: RadixTable<u32> = RadixTable::new();
        assert!(t.is_empty());
        assert_eq!(t.lookup(ip("1.2.3.4")), None);
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = RadixTable::new();
        t.insert(ip("0.0.0.0"), 0, 99u32);
        assert_eq!(t.lookup(ip("1.2.3.4")), Some(&99));
        assert_eq!(t.lookup(ip("255.255.255.255")), Some(&99));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = RadixTable::new();
        t.insert(ip("10.0.0.0"), 8, 1u32);
        t.insert(ip("10.1.0.0"), 16, 2);
        t.insert(ip("10.1.2.0"), 24, 3);
        assert_eq!(t.lookup(ip("10.1.2.3")), Some(&3));
        assert_eq!(t.lookup(ip("10.1.9.9")), Some(&2));
        assert_eq!(t.lookup(ip("10.200.0.1")), Some(&1));
        assert_eq!(t.lookup(ip("11.0.0.1")), None);
    }

    #[test]
    fn insert_replaces_and_returns_old() {
        let mut t = RadixTable::new();
        assert_eq!(t.insert(ip("10.0.0.0"), 8, 1u32), None);
        assert_eq!(t.insert(ip("10.0.0.0"), 8, 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(ip("10.5.5.5")), Some(&2));
    }

    #[test]
    fn prefix_is_masked_to_length() {
        let mut t = RadixTable::new();
        t.insert(ip("10.1.2.3"), 8, 7u32); // host bits ignored
        assert_eq!(t.lookup(ip("10.200.200.200")), Some(&7));
        assert_eq!(t.get(ip("10.0.0.0"), 8), Some(&7));
    }

    #[test]
    fn fork_on_divergent_prefixes() {
        let mut t = RadixTable::new();
        t.insert(ip("128.0.0.0"), 8, 1u32);
        t.insert(ip("192.0.0.0"), 8, 2);
        assert_eq!(t.lookup(ip("128.1.1.1")), Some(&1));
        assert_eq!(t.lookup(ip("192.1.1.1")), Some(&2));
        // A fork node (prefix 1, the common MSB) exists but carries no value.
        assert_eq!(t.len(), 2);
        assert!(t.node_count() >= 4); // root + fork + two leaves
    }

    #[test]
    fn insert_between_existing_nodes() {
        let mut t = RadixTable::new();
        t.insert(ip("10.1.2.0"), 24, 1u32);
        t.insert(ip("10.0.0.0"), 8, 2); // ancestor added after descendant
        assert_eq!(t.lookup(ip("10.1.2.9")), Some(&1));
        assert_eq!(t.lookup(ip("10.9.9.9")), Some(&2));
    }

    #[test]
    fn host_routes() {
        let mut t = RadixTable::new();
        t.insert(ip("1.2.3.4"), 32, 1u32);
        t.insert(ip("1.2.3.5"), 32, 2);
        assert_eq!(t.lookup(ip("1.2.3.4")), Some(&1));
        assert_eq!(t.lookup(ip("1.2.3.5")), Some(&2));
        assert_eq!(t.lookup(ip("1.2.3.6")), None);
    }

    #[test]
    fn remove_restores_parent_match() {
        let mut t = RadixTable::new();
        t.insert(ip("10.0.0.0"), 8, 1u32);
        t.insert(ip("10.1.0.0"), 16, 2);
        assert_eq!(t.remove(ip("10.1.0.0"), 16), Some(2));
        assert_eq!(t.lookup(ip("10.1.2.3")), Some(&1));
        assert_eq!(t.remove(ip("10.1.0.0"), 16), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_recompresses_arena() {
        let mut t = RadixTable::new();
        t.insert(ip("128.0.0.0"), 8, 1u32);
        t.insert(ip("192.0.0.0"), 8, 2);
        let nodes_before = t.node_count();
        t.remove(ip("192.0.0.0"), 8);
        assert!(t.node_count() < nodes_before);
        assert_eq!(t.lookup(ip("128.1.1.1")), Some(&1));
        assert_eq!(t.lookup(ip("192.1.1.1")), None);
        // Arena slots are reused.
        t.insert(ip("192.0.0.0"), 8, 3);
        assert_eq!(t.lookup(ip("192.1.1.1")), Some(&3));
    }

    #[test]
    fn traced_lookup_counts_and_addresses() {
        let mut t = RadixTable::new();
        t.insert(ip("10.0.0.0"), 8, 1u32);
        t.insert(ip("10.1.0.0"), 16, 2);
        let mut rec = RecordingSink::new();
        let (hit, visited) = t.traced_lookup(ip("10.1.2.3"), &mut rec);
        assert_eq!(hit, Some(&2));
        assert!(visited >= 2);
        assert!(!rec.events.is_empty());
        for (_, addr) in &rec.events {
            assert!(*addr >= ARENA_BASE);
            assert!(*addr < ARENA_BASE + (t.node_count() as u64 + 4) * NODE_SIZE);
        }
        // Deeper lookups touch more memory than shallow ones.
        let mut shallow = CountingSink::new();
        let _ = t.traced_lookup(ip("200.0.0.1"), &mut shallow);
        let mut deep = CountingSink::new();
        let _ = t.traced_lookup(ip("10.1.2.3"), &mut deep);
        assert!(deep.total() > shallow.total());
    }

    #[test]
    fn traced_insert_emits_writes() {
        let mut t = RadixTable::new();
        let mut c = CountingSink::new();
        t.traced_insert(ip("10.0.0.0"), 8, 1u32, &mut c);
        assert!(c.writes >= 1);
        assert!(c.reads >= 1);
    }

    #[test]
    fn iter_yields_all_routes() {
        let mut t = RadixTable::new();
        let routes = [
            ("10.0.0.0", 8u8),
            ("10.1.0.0", 16),
            ("192.168.0.0", 16),
            ("0.0.0.0", 0),
        ];
        for (i, (p, l)) in routes.iter().enumerate() {
            t.insert(ip(p), *l, i);
        }
        let mut got: Vec<(Ipv4Addr, u8)> = t.iter().map(|(p, l, _)| (p, l)).collect();
        got.sort();
        let mut want: Vec<(Ipv4Addr, u8)> = routes.iter().map(|(p, l)| (ip(p), *l)).collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn agrees_with_linear_scan_oracle() {
        // Deterministic pseudo-random routes vs brute force.
        let mut t = RadixTable::new();
        let mut routes: Vec<(u32, u8, usize)> = Vec::new();
        let mut state = 0xDEAD_BEEFu32;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            state
        };
        for i in 0..500 {
            let len = (next() % 25 + 8) as u8;
            let prefix = next() & mask(len);
            if t.get(Ipv4Addr::from(prefix), len).is_none() {
                routes.push((prefix, len, i));
            }
            t.insert(Ipv4Addr::from(prefix), len, i);
        }
        for _ in 0..2000 {
            let addr = next();
            let expect = routes
                .iter()
                .filter(|(p, l, _)| addr & mask(*l) == *p)
                .max_by_key(|(_, l, _)| *l)
                .map(|(_, _, v)| *v);
            // On duplicate prefixes the later insert wins in the trie; the
            // oracle keeps the first, so compare by prefix not value.
            let got_route = {
                let got = t.traced_lookup(Ipv4Addr::from(addr), &mut NullSink).0;
                got.copied()
            };
            match (expect, got_route) {
                (None, None) => {}
                (Some(_), Some(_)) => {
                    let best_len = routes
                        .iter()
                        .filter(|(p, l, _)| addr & mask(*l) == *p)
                        .map(|(_, l, _)| *l)
                        .max();
                    // The matched value must correspond to a route of the
                    // maximum matching length.
                    let got_val = got_route.unwrap();
                    let lens: Vec<u8> = routes
                        .iter()
                        .filter(|(_, _, v)| *v == got_val)
                        .map(|(_, l, _)| *l)
                        .collect();
                    assert!(lens.iter().any(|l| Some(*l) == best_len) || lens.is_empty());
                }
                (a, b) => panic!("oracle {a:?} vs trie {b:?} for {addr:#x}"),
            }
        }
    }

    #[test]
    fn insert_lookup_remove_stress() {
        let mut t = RadixTable::new();
        for i in 0..256u32 {
            t.insert(Ipv4Addr::new(10, 0, i as u8, 0), 24, i);
        }
        assert_eq!(t.len(), 256);
        for i in 0..256u32 {
            assert_eq!(t.lookup(Ipv4Addr::new(10, 0, i as u8, 77)), Some(&i));
        }
        for i in (0..256u32).step_by(2) {
            assert_eq!(t.remove(Ipv4Addr::new(10, 0, i as u8, 0), 24), Some(i));
        }
        assert_eq!(t.len(), 128);
        for i in 0..256u32 {
            let got = t.lookup(Ipv4Addr::new(10, 0, i as u8, 77));
            if i % 2 == 0 {
                assert_eq!(got, None);
            } else {
                assert_eq!(got, Some(&i));
            }
        }
    }
}
