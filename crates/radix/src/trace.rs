//! Memory-access tracing hooks — the workspace's substitute for the
//! paper's ATOM binary instrumentation.
//!
//! The paper instrumented the benchmarks with ATOM and "records the number
//! of memory accesses performed by each packet". Here, traced radix
//! operations emit one event per field touch, carrying a deterministic
//! synthetic address derived from the arena slot, so a downstream cache
//! simulator sees a realistic, layout-faithful address stream.

/// Whether an access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// Receiver of memory-access events.
///
/// Implementations must be cheap: traced lookups call this several times
/// per visited node.
pub trait AccessSink {
    /// Called once per memory access with its synthetic address.
    fn access(&mut self, kind: AccessKind, addr: u64);
}

/// Discards all events (used when only the return value matters).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl AccessSink for NullSink {
    #[inline]
    fn access(&mut self, _kind: AccessKind, _addr: u64) {}
}

/// Counts events without storing them.
#[derive(Debug, Default, Clone)]
pub struct CountingSink {
    /// Number of reads seen.
    pub reads: u64,
    /// Number of writes seen.
    pub writes: u64,
}

impl CountingSink {
    /// Creates a zeroed counter.
    pub fn new() -> CountingSink {
        CountingSink::default()
    }

    /// Total accesses of both kinds.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

impl AccessSink for CountingSink {
    #[inline]
    fn access(&mut self, kind: AccessKind, _addr: u64) {
        match kind {
            AccessKind::Read => self.reads += 1,
            AccessKind::Write => self.writes += 1,
        }
    }
}

/// Records the full `(kind, address)` stream — what cache simulation
/// consumes.
#[derive(Debug, Default, Clone)]
pub struct RecordingSink {
    /// The ordered access stream.
    pub events: Vec<(AccessKind, u64)>,
}

impl RecordingSink {
    /// Creates an empty recorder.
    pub fn new() -> RecordingSink {
        RecordingSink::default()
    }

    /// Drops recorded events, keeping capacity.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

impl AccessSink for RecordingSink {
    #[inline]
    fn access(&mut self, kind: AccessKind, addr: u64) {
        self.events.push((kind, addr));
    }
}

impl<S: AccessSink + ?Sized> AccessSink for &mut S {
    #[inline]
    fn access(&mut self, kind: AccessKind, addr: u64) {
        (**self).access(kind, addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_tallies() {
        let mut s = CountingSink::new();
        s.access(AccessKind::Read, 0x10);
        s.access(AccessKind::Read, 0x20);
        s.access(AccessKind::Write, 0x30);
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn recording_sink_keeps_order() {
        let mut s = RecordingSink::new();
        s.access(AccessKind::Write, 7);
        s.access(AccessKind::Read, 9);
        assert_eq!(
            s.events,
            vec![(AccessKind::Write, 7), (AccessKind::Read, 9)]
        );
        s.clear();
        assert!(s.events.is_empty());
    }

    #[test]
    fn mut_ref_forwarding() {
        fn feed<S: AccessSink>(mut sink: S) {
            sink.access(AccessKind::Read, 1);
        }
        let mut c = CountingSink::new();
        feed(&mut c);
        assert_eq!(c.reads, 1);
    }
}
