//! PATRICIA (path-compressed radix) tree IP routing table with
//! memory-access tracing.
//!
//! §6 of the paper validates its decompressed traces by running three
//! packet-processing benchmarks whose common core is "the Radix Tree
//! Routing inside their algorithms": a binary tree that stores prefixes
//! and masks, matching more bits as the lookup walks down. This crate is
//! that substrate:
//!
//! * [`trie::RadixTable`] — longest-prefix-match table over IPv4 prefixes
//!   with insert/lookup/remove;
//! * [`trace`] — a pluggable [`trace::AccessSink`] that receives one
//!   synthetic memory address per field touch during traced operations
//!   (the stand-in for the paper's ATOM instrumentation);
//! * [`tablegen`] — seeded synthetic routing tables with realistic prefix
//!   length mixes, plus tables derived from a trace's destination set.
//!
//! # Example
//!
//! ```
//! use flowzip_radix::trie::RadixTable;
//! use std::net::Ipv4Addr;
//!
//! let mut table = RadixTable::new();
//! table.insert(Ipv4Addr::new(10, 0, 0, 0), 8, "corp");
//! table.insert(Ipv4Addr::new(10, 1, 0, 0), 16, "lab");
//! assert_eq!(table.lookup(Ipv4Addr::new(10, 1, 2, 3)), Some(&"lab"));
//! assert_eq!(table.lookup(Ipv4Addr::new(10, 9, 9, 9)), Some(&"corp"));
//! assert_eq!(table.lookup(Ipv4Addr::new(11, 0, 0, 1)), None);
//! ```

pub mod tablegen;
pub mod trace;
pub mod trie;

pub use tablegen::TableGen;
pub use trace::{AccessKind, AccessSink, CountingSink, NullSink, RecordingSink};
pub use trie::RadixTable;
