//! Seeded synthetic routing tables.
//!
//! The paper ran its benchmarks against real forwarding tables; those are
//! not redistributable, so this module generates tables with the familiar
//! shape of a backbone FIB — a prefix-length histogram dominated by /24s,
//! with meaningful /16 and /8 mass — plus tables *derived from a trace's
//! destinations* so every lookup during replay actually walks the tree.

use crate::trie::RadixTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;

/// Prefix-length weights loosely following measured BGP tables: most
/// prefixes are /24, then /16..#/23, a little /8.
const LENGTH_WEIGHTS: [(u8, u32); 9] = [
    (8, 2),
    (12, 3),
    (16, 12),
    (18, 6),
    (20, 10),
    (21, 8),
    (22, 10),
    (23, 9),
    (24, 40),
];

/// Synthetic routing table generator.
///
/// # Example
///
/// ```
/// use flowzip_radix::TableGen;
///
/// let table = TableGen::new(7).build(1_000);
/// assert!(table.len() >= 900); // collisions may drop a few
/// ```
#[derive(Debug, Clone)]
pub struct TableGen {
    rng: StdRng,
}

impl TableGen {
    /// Creates a generator with a deterministic seed.
    pub fn new(seed: u64) -> TableGen {
        TableGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn sample_len(&mut self) -> u8 {
        let total: u32 = LENGTH_WEIGHTS.iter().map(|(_, w)| w).sum();
        let mut pick = self.rng.gen_range(0..total);
        for (len, w) in LENGTH_WEIGHTS {
            if pick < w {
                return len;
            }
            pick -= w;
        }
        24
    }

    /// Builds a table of roughly `routes` prefixes (duplicates overwrite,
    /// so the exact count can be slightly lower) with next-hop indices as
    /// values. A default route is always present so no lookup misses.
    pub fn build(&mut self, routes: usize) -> RadixTable<u32> {
        let mut table = RadixTable::new();
        table.insert(Ipv4Addr::UNSPECIFIED, 0, 0);
        for i in 1..=routes {
            let len = self.sample_len();
            let addr: u32 = self.rng.gen();
            table.insert(Ipv4Addr::from(addr), len, (i % 16) as u32 + 1);
        }
        table
    }

    /// Builds a table that *covers* the given destination addresses: for
    /// each sampled destination a /24 (sometimes /16) route is added, plus
    /// background prefixes and a default route. This mirrors how the
    /// paper's benchmarks always resolve trace destinations.
    pub fn build_covering(
        &mut self,
        destinations: impl IntoIterator<Item = Ipv4Addr>,
        background_routes: usize,
    ) -> RadixTable<u32> {
        let mut table = self.build(background_routes);
        for (i, d) in destinations.into_iter().enumerate() {
            let len = if self.rng.gen_bool(0.8) { 24 } else { 16 };
            table.insert(d, len, (i as u32 + 1) % 16 + 1);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = TableGen::new(42).build(500);
        let b = TableGen::new(42).build(500);
        assert_eq!(a.len(), b.len());
        let mut ra: Vec<_> = a.iter().map(|(p, l, v)| (p, l, *v)).collect();
        let mut rb: Vec<_> = b.iter().map(|(p, l, v)| (p, l, *v)).collect();
        ra.sort();
        rb.sort();
        assert_eq!(ra, rb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TableGen::new(1).build(500);
        let b = TableGen::new(2).build(500);
        let ra: Vec<_> = a.iter().map(|(p, l, _)| (p, l)).collect();
        let rb: Vec<_> = b.iter().map(|(p, l, _)| (p, l)).collect();
        assert_ne!(ra, rb);
    }

    #[test]
    fn default_route_guarantees_a_match() {
        let t = TableGen::new(3).build(100);
        for addr in [Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(250, 1, 1, 1)] {
            assert!(t.lookup(addr).is_some());
        }
    }

    #[test]
    fn covering_table_resolves_destinations_specifically() {
        let dests = vec![
            Ipv4Addr::new(198, 51, 100, 7),
            Ipv4Addr::new(203, 0, 113, 9),
        ];
        let t = TableGen::new(9).build_covering(dests.clone(), 200);
        for d in dests {
            let hop = t.lookup(d).copied().unwrap();
            assert!(hop >= 1, "destination should hit a specific route");
        }
    }

    #[test]
    fn prefix_length_mix_is_dominated_by_slash24() {
        let t = TableGen::new(11).build(5_000);
        let mut by_len = [0usize; 33];
        for (_, l, _) in t.iter() {
            by_len[l as usize] += 1;
        }
        let total: usize = by_len.iter().sum();
        assert!(
            by_len[24] as f64 / total as f64 > 0.25,
            "/24 should dominate, got {}/{}",
            by_len[24],
            total
        );
    }
}
