//! Property tests: the PATRICIA trie must agree with a brute-force
//! longest-prefix-match oracle through arbitrary insert/remove/lookup
//! interleavings.

use flowzip_radix::RadixTable;
use proptest::prelude::*;
use std::collections::HashMap;
use std::net::Ipv4Addr;

fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len as u32)
    }
}

/// Brute-force oracle: a map from (prefix, len) to value.
#[derive(Default)]
struct Oracle {
    routes: HashMap<(u32, u8), u32>,
}

impl Oracle {
    fn insert(&mut self, prefix: u32, len: u8, value: u32) -> Option<u32> {
        self.routes.insert((prefix & mask(len), len), value)
    }

    fn remove(&mut self, prefix: u32, len: u8) -> Option<u32> {
        self.routes.remove(&(prefix & mask(len), len))
    }

    fn lookup(&self, addr: u32) -> Option<u32> {
        self.routes
            .iter()
            .filter(|(&(p, l), _)| addr & mask(l) == p)
            .max_by_key(|(&(_, l), _)| l)
            .map(|(_, &v)| v)
    }
}

#[derive(Debug, Clone)]
enum Op {
    Insert(u32, u8, u32),
    Remove(u32, u8),
    Lookup(u32),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u32>(), 0u8..=32, any::<u32>()).prop_map(|(p, l, v)| Op::Insert(p, l, v)),
        (any::<u32>(), 0u8..=32).prop_map(|(p, l)| Op::Remove(p, l)),
        any::<u32>().prop_map(Op::Lookup),
    ]
}

/// Ops biased toward a small prefix universe so removes/lookups actually
/// hit inserted routes.
fn arb_clustered_op() -> impl Strategy<Value = Op> {
    let prefix = prop::sample::select(vec![
        0x0A00_0000u32,
        0x0A01_0000,
        0x0A01_0100,
        0xC0A8_0000,
        0xC0A8_0100,
        0x8000_0000,
        0xFFFF_FF00,
    ]);
    let len = prop::sample::select(vec![0u8, 8, 16, 24, 32]);
    prop_oneof![
        (prefix.clone(), len.clone(), any::<u32>()).prop_map(|(p, l, v)| Op::Insert(p, l, v)),
        (prefix.clone(), len).prop_map(|(p, l)| Op::Remove(p, l)),
        (prefix, any::<u8>()).prop_map(|(p, low)| Op::Lookup(p | low as u32)),
    ]
}

fn run_ops(ops: Vec<Op>) -> Result<(), TestCaseError> {
    let mut trie: RadixTable<u32> = RadixTable::new();
    let mut oracle = Oracle::default();
    for op in ops {
        match op {
            Op::Insert(p, l, v) => {
                let a = trie.insert(Ipv4Addr::from(p), l, v);
                let b = oracle.insert(p, l, v);
                prop_assert_eq!(a, b, "insert {:#x}/{}", p, l);
            }
            Op::Remove(p, l) => {
                let a = trie.remove(Ipv4Addr::from(p), l);
                let b = oracle.remove(p, l);
                prop_assert_eq!(a, b, "remove {:#x}/{}", p, l);
            }
            Op::Lookup(a) => {
                let got = trie.lookup(Ipv4Addr::from(a)).copied();
                let want = oracle.lookup(a);
                prop_assert_eq!(got, want, "lookup {:#x}", a);
            }
        }
        prop_assert_eq!(trie.len(), oracle.routes.len());
    }
    Ok(())
}

proptest! {
    #[test]
    fn random_ops_match_oracle(ops in prop::collection::vec(arb_op(), 1..200)) {
        run_ops(ops)?;
    }

    #[test]
    fn clustered_ops_match_oracle(ops in prop::collection::vec(arb_clustered_op(), 1..300)) {
        run_ops(ops)?;
    }

    #[test]
    fn traced_lookup_agrees_with_plain(
        routes in prop::collection::vec((any::<u32>(), 8u8..=28, any::<u32>()), 1..100),
        probes in prop::collection::vec(any::<u32>(), 1..100))
    {
        let mut trie: RadixTable<u32> = RadixTable::new();
        for &(p, l, v) in &routes {
            trie.insert(Ipv4Addr::from(p), l, v);
        }
        for &a in &probes {
            let plain = trie.lookup(Ipv4Addr::from(a)).copied();
            let mut sink = flowzip_radix::CountingSink::new();
            let (traced, visited) = trie.traced_lookup(Ipv4Addr::from(a), &mut sink);
            prop_assert_eq!(plain, traced.copied());
            prop_assert!(visited >= 1);
            prop_assert!(sink.total() >= visited as u64, ">= one access per visit");
        }
    }
}
