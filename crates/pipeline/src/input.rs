//! [`Input`] — the one place every packet (or archive) source a session
//! can consume is named.

use flowzip_io::{InputSource, IoStats};
use flowzip_trace::{PacketRecord, Trace, TraceError};
use std::fmt;
use std::path::{Path, PathBuf};

/// One session input. Compression accepts every variant; decompression
/// accepts the archive-shaped ones ([`Input::file`], [`Input::bytes`]).
///
/// Construct with the associated functions — the variants themselves are
/// an implementation detail:
///
/// | constructor | feeds compress with | feeds decompress with |
/// |---|---|---|
/// | [`Input::file`] | one capture file (TSH/pcap, sniffed) | one `.fzc` archive |
/// | [`Input::files`] | an ordered pre-split capture set | — |
/// | [`Input::glob`] / [`Input::globs`] | `*`/`?` filename patterns | — |
/// | [`Input::trace`] | an in-memory [`Trace`] | — |
/// | [`Input::packets`] | any packet iterator | — |
/// | [`Input::source`] | any [`InputSource`] impl | — |
/// | [`Input::bytes`] | — | archive bytes in memory |
pub struct Input<'a> {
    pub(crate) kind: InputKind<'a>,
}

pub(crate) enum InputKind<'a> {
    /// Literal paths, in delivery order.
    Files(Vec<PathBuf>),
    /// `*`/`?` filename patterns and/or literal paths, expanded at run
    /// time (a pattern matching nothing is a configuration error, not an
    /// empty run).
    Patterns(Vec<String>),
    /// A borrowed in-memory trace.
    Trace(&'a Trace),
    /// An infallible packet iterator. `Send` because the engine's
    /// parallel routing workers pull from the stream on pool threads.
    Packets(Box<dyn Iterator<Item = PacketRecord> + Send + 'a>),
    /// An already-opened [`InputSource`], type-erased: its stats handle
    /// plus its packet stream.
    Stream {
        stats: IoStats,
        packets: Box<dyn Iterator<Item = Result<PacketRecord, TraceError>> + Send + 'a>,
        description: String,
    },
    /// In-memory archive bytes (decompression only).
    Bytes(Vec<u8>),
}

impl<'a> Input<'a> {
    /// One file: a capture (TSH or pcap, sniffed from the magic) for
    /// compression, or a `.fzc` archive for decompression.
    pub fn file(path: impl AsRef<Path>) -> Input<'static> {
        Input {
            kind: InputKind::Files(vec![path.as_ref().to_path_buf()]),
        }
    }

    /// An ordered set of pre-split capture files, streamed as **one**
    /// logical trace in the given order (the multi-file reader path).
    pub fn files<P: AsRef<Path>>(paths: impl IntoIterator<Item = P>) -> Input<'static> {
        Input {
            kind: InputKind::Files(
                paths
                    .into_iter()
                    .map(|p| p.as_ref().to_path_buf())
                    .collect(),
            ),
        }
    }

    /// A `*`/`?` filename pattern (see [`flowzip_io::glob`]); matches are
    /// sorted so numbered chunks keep capture order. A pattern matching
    /// zero files is a configuration error, never a silent empty run.
    pub fn glob(pattern: impl Into<String>) -> Input<'static> {
        Input {
            kind: InputKind::Patterns(vec![pattern.into()]),
        }
    }

    /// A mixed list of literal paths and patterns, expanded in argument
    /// order — exactly what a CLI's positional arguments are.
    pub fn globs<S: AsRef<str>>(patterns: impl IntoIterator<Item = S>) -> Input<'static> {
        Input {
            kind: InputKind::Patterns(
                patterns
                    .into_iter()
                    .map(|s| s.as_ref().to_string())
                    .collect(),
            ),
        }
    }

    /// A borrowed in-memory trace (the batch compressor's native input).
    pub fn trace(trace: &'a Trace) -> Input<'a> {
        Input {
            kind: InputKind::Trace(trace),
        }
    }

    /// Any infallible packet sequence.
    pub fn packets<I>(packets: I) -> Input<'a>
    where
        I: IntoIterator<Item = PacketRecord>,
        I::IntoIter: Send + 'a,
    {
        Input {
            kind: InputKind::Packets(Box::new(packets.into_iter())),
        }
    }

    /// An already-opened [`InputSource`] — a
    /// [`FileSource`](flowzip_io::FileSource) you configured yourself, a
    /// [`MultiFileSource`](flowzip_io::MultiFileSource), or your own
    /// implementation. The source's [`IoStats`] feed the report's
    /// read-wait/compute split.
    pub fn source<S>(source: S) -> Input<'a>
    where
        S: InputSource,
        S::Packets: Send + 'a,
    {
        let stats = source.stats();
        // Name the source by its type (e.g. `MultiFileSource`) so
        // reports and error contexts say *what* was being read, not just
        // "input source".
        let description = std::any::type_name::<S>()
            .rsplit("::")
            .next()
            .unwrap_or("InputSource")
            .to_string();
        Input {
            kind: InputKind::Stream {
                stats,
                packets: Box::new(source.into_packets()),
                description,
            },
        }
    }

    /// In-memory archive bytes (decompression only).
    pub fn bytes(bytes: Vec<u8>) -> Input<'static> {
        Input {
            kind: InputKind::Bytes(bytes),
        }
    }

    /// Human-readable names for the report's `inputs` list.
    pub(crate) fn describe(&self) -> Vec<String> {
        match &self.kind {
            InputKind::Files(paths) => paths.iter().map(|p| p.display().to_string()).collect(),
            InputKind::Patterns(pats) => pats.clone(),
            InputKind::Trace(_) => vec!["<in-memory trace>".to_string()],
            InputKind::Packets(_) => vec!["<packet stream>".to_string()],
            InputKind::Stream { description, .. } => vec![format!("<{description}>")],
            InputKind::Bytes(_) => vec!["<in-memory archive>".to_string()],
        }
    }
}

impl fmt::Debug for Input<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            InputKind::Files(paths) => f.debug_tuple("Input::files").field(paths).finish(),
            InputKind::Patterns(pats) => f.debug_tuple("Input::globs").field(pats).finish(),
            InputKind::Trace(t) => write!(f, "Input::trace({} packets)", t.len()),
            InputKind::Packets(_) => write!(f, "Input::packets(..)"),
            InputKind::Stream { description, .. } => write!(f, "Input::source({description})"),
            InputKind::Bytes(b) => write!(f, "Input::bytes({} B)", b.len()),
        }
    }
}
