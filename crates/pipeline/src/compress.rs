//! [`Pipeline::compress`]: one session from any [`Input`] through the
//! batch compressor or the streaming engine into any [`Sink`].

use crate::error::PipelineError;
use crate::input::{Input, InputKind};
use crate::report::{ArchiveSummary, Mode, Report, TelemetrySummary, Timing};
use crate::sink::Sink;
use crate::Pipeline;
use flowzip_core::{ArchiveFormat, Compressor, Params};
use flowzip_engine::{CancelFlag, Routing, StreamingEngine};
use flowzip_io::{
    glob, FileSource, InputSource, IoStats, MultiFileConfig, MultiFileSource, PrefetchConfig,
};
use flowzip_obs::{Metrics, Profiler, Sampler, SnapshotFormat, StatsSink};
use flowzip_trace::packet::HEADER_BYTES;
use flowzip_trace::{Duration, Trace};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

/// What a finished session hands back: the unified [`Report`], plus the
/// serialized output when the sink was [`Sink::bytes`].
#[derive(Debug)]
pub struct RunResult {
    /// The unified run report.
    pub report: Report,
    pub(crate) bytes: Option<Vec<u8>>,
}

impl RunResult {
    /// The serialized output, when the sink was [`Sink::bytes`].
    pub fn bytes(&self) -> Option<&[u8]> {
        self.bytes.as_deref()
    }

    /// Consumes the result into the serialized output, when the sink was
    /// [`Sink::bytes`].
    pub fn into_bytes(self) -> Option<Vec<u8>> {
        self.bytes
    }
}

/// Builder for one compression session. Construct with
/// [`Pipeline::compress`]; see the [crate docs](crate) for the routing
/// rules.
#[derive(Debug)]
pub struct CompressBuilder<'a> {
    input: Option<Input<'a>>,
    sink: Option<Sink<'a>>,
    params: Params,
    format: ArchiveFormat,
    streaming: Option<bool>,
    threads: Option<usize>,
    batch_size: Option<usize>,
    channel_capacity: Option<usize>,
    idle_timeout: Option<Duration>,
    prefetch_mb: Option<u64>,
    readers: Option<usize>,
    routing: Option<Routing>,
    telemetry: Option<bool>,
    metrics: Option<Metrics>,
    profiler: Option<Profiler>,
    stats_interval: Option<std::time::Duration>,
    stats_format: Option<SnapshotFormat>,
    stats_writer: Option<StatsSink>,
    cancel: Option<Arc<AtomicBool>>,
}

impl Pipeline {
    /// Starts a compression session: one [`Input`], one [`Sink`], tuning
    /// in between, then [`run()`](CompressBuilder::run).
    pub fn compress<'a>() -> CompressBuilder<'a> {
        CompressBuilder {
            input: None,
            sink: None,
            params: Params::paper(),
            format: ArchiveFormat::V2,
            streaming: None,
            threads: None,
            batch_size: None,
            channel_capacity: None,
            idle_timeout: None,
            prefetch_mb: None,
            readers: None,
            routing: None,
            telemetry: None,
            metrics: None,
            profiler: None,
            stats_interval: None,
            stats_format: None,
            stats_writer: None,
            cancel: None,
        }
    }
}

impl<'a> CompressBuilder<'a> {
    /// The packet input (required).
    pub fn input(mut self, input: Input<'a>) -> Self {
        self.input = Some(input);
        self
    }

    /// The archive output (required).
    pub fn sink(mut self, sink: Sink<'a>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Compression parameters (default: [`Params::paper`]).
    pub fn params(mut self, params: Params) -> Self {
        self.params = params;
        self
    }

    /// Container format to write (default: [`ArchiveFormat::V2`]).
    pub fn format(mut self, format: ArchiveFormat) -> Self {
        self.format = format;
        self
    }

    /// Forces the streaming engine (`true`) or the batch compressor
    /// (`false`). Unset, the session routes itself: engine/reader tuning,
    /// multiple input files, or a non-collectible input select streaming;
    /// a single file or an in-memory trace with no tuning runs batch.
    pub fn streaming(mut self, streaming: bool) -> Self {
        self.streaming = Some(streaming);
        self
    }

    /// Worker shards for the streaming engine (implies streaming;
    /// `0` is a configuration error).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Packets per cross-thread batch (implies streaming; `0` is a
    /// configuration error).
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = Some(batch_size);
        self
    }

    /// Bounded in-flight batches per shard channel (implies streaming;
    /// `0` is a configuration error).
    pub fn channel_capacity(mut self, capacity: usize) -> Self {
        self.channel_capacity = Some(capacity);
        self
    }

    /// Evict flows idle longer than this much *trace* time (implies
    /// streaming).
    pub fn idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = Some(timeout);
        self
    }

    /// Prefetch file reads on a dedicated I/O thread, double-buffering
    /// chunks of this many MiB (implies streaming; `0` is a
    /// configuration error — prefetching nothing is a misconfiguration,
    /// not a mode).
    pub fn prefetch_mb(mut self, mb: u64) -> Self {
        self.prefetch_mb = Some(mb);
        self
    }

    /// Parallel reader threads for multi-file input (implies streaming;
    /// `0` is a configuration error).
    pub fn readers(mut self, readers: usize) -> Self {
        self.readers = Some(readers);
        self
    }

    /// Routing topology for the streaming engine (implies streaming;
    /// default [`Routing::Parallel`]). Parallel routing hashes packets
    /// on a pool of routing workers; [`Routing::Serial`] keeps the
    /// original dedicated router thread. Output is byte-identical
    /// either way.
    pub fn routing(mut self, routing: Routing) -> Self {
        self.routing = Some(routing);
        self
    }

    /// Derives per-flow TCP telemetry (RTT, retransmissions, idle and
    /// active time) inline during accumulation and appends the rev 2.2
    /// `FZT1` side-section to the archive (implies streaming; requires
    /// the v2 container). The non-telemetry bytes are unchanged: a
    /// pre-2.2 reader decodes the same archive byte-identically.
    pub fn telemetry(mut self, telemetry: bool) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Records per-stage metrics into this registry: engine counters and
    /// queue gauges, reader byte/wait counters, container timings. Pass
    /// [`Metrics::enabled`] and snapshot it after the run — or read the
    /// final dump straight off [`Report::metrics`]
    /// (`report.to_json()` embeds it under `"metrics"`). Defaults to
    /// disabled, which costs the hot loops one predictable branch.
    pub fn metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Records per-stage span timings into this profiler — dump it with
    /// [`Profiler::to_trace_json`] after the run and open the result in
    /// `chrome://tracing` or Perfetto. Defaults to disabled.
    pub fn profiler(mut self, profiler: Profiler) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// Emits a live stats snapshot every `interval` while the run is in
    /// flight, plus one final snapshot at completion — so even a run
    /// shorter than the interval produces at least one line. Implies
    /// metrics: when no [`CompressBuilder::metrics`] registry is given,
    /// an enabled one is created for the session. A zero interval is a
    /// configuration error.
    pub fn stats_interval(mut self, interval: std::time::Duration) -> Self {
        self.stats_interval = Some(interval);
        self
    }

    /// How live snapshots are formatted (default
    /// [`SnapshotFormat::JsonLines`]; requires
    /// [`CompressBuilder::stats_interval`]).
    pub fn stats_format(mut self, format: SnapshotFormat) -> Self {
        self.stats_format = Some(format);
        self
    }

    /// Where live snapshots go (default standard error; requires
    /// [`CompressBuilder::stats_interval`]).
    pub fn stats_writer(mut self, writer: StatsSink) -> Self {
        self.stats_writer = Some(writer);
        self
    }

    /// Cooperative cancellation: when `flag` flips to `true` mid-run,
    /// the session stops pulling input at the next pull point and
    /// finalizes everything read so far into a **valid partial archive**
    /// (both routes: the engine drains its shards, the batch compressor
    /// compresses the collected prefix). This is what graceful SIGINT
    /// rides on — the delivered file is complete and decodable, just cut
    /// at the interruption point.
    pub fn cancel(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Runs the session: resolve the input, route to the batch
    /// compressor or the streaming engine, serialize in the configured
    /// container format, deliver to the sink, and report.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Config`] for invalid configuration (zero knobs,
    /// empty input set, glob matching nothing, conflicting routing);
    /// [`PipelineError::Read`] for input failures;
    /// [`PipelineError::Write`] for sink failures.
    pub fn run(self) -> Result<RunResult, PipelineError> {
        let CompressBuilder {
            input,
            sink,
            params,
            format,
            streaming,
            threads,
            batch_size,
            channel_capacity,
            idle_timeout,
            prefetch_mb,
            readers,
            routing,
            telemetry,
            metrics,
            profiler,
            stats_interval,
            stats_format,
            stats_writer,
            cancel,
        } = self;
        let input = input.ok_or_else(|| {
            PipelineError::config("compress session has no input — call .input(Input::…)")
        })?;
        let sink = sink.ok_or_else(|| {
            PipelineError::config("compress session has no sink — call .sink(Sink::…)")
        })?;
        if threads == Some(0) {
            return Err(PipelineError::config(
                "threads must be ≥ 1 (got 0; zero worker shards would hang the router)",
            ));
        }
        if batch_size == Some(0) {
            return Err(PipelineError::config(
                "batch_size must be ≥ 1 (got 0; empty batches would never hand packets over)",
            ));
        }
        if channel_capacity == Some(0) {
            return Err(PipelineError::config(
                "channel_capacity must be ≥ 1 (got 0; a zero-slot channel would deadlock)",
            ));
        }
        if readers == Some(0) {
            return Err(PipelineError::config(
                "readers must be ≥ 1 (got 0; zero reader threads would never deliver a packet)",
            ));
        }
        if prefetch_mb == Some(0) {
            return Err(PipelineError::config(
                "prefetch_mb must be ≥ 1 when prefetch is enabled (got 0; \
                 omit .prefetch_mb() to disable prefetching)",
            ));
        }
        if telemetry == Some(true) && matches!(format, ArchiveFormat::V1) {
            return Err(PipelineError::config(
                "telemetry rows ride the v2 container's FZT1 side-section — \
                 the v1 single-blob format has nowhere to carry them \
                 (drop --format v1 or --telemetry)",
            ));
        }
        if stats_interval == Some(std::time::Duration::ZERO) {
            return Err(PipelineError::config(
                "stats_interval must be non-zero (a zero interval would spin emitting snapshots)",
            ));
        }
        if stats_interval.is_none() && (stats_format.is_some() || stats_writer.is_some()) {
            return Err(PipelineError::config(
                "stats_format/stats_writer shape live snapshot output and need \
                 .stats_interval(…) to produce any",
            ));
        }

        let inputs_desc = input.describe();
        // Expand patterns now so "matched no files" surfaces as a clear
        // configuration error before any thread or file is touched.
        let kind = match input.kind {
            InputKind::Patterns(pats) => {
                let paths = glob::expand_all(&pats).map_err(PipelineError::config)?;
                InputKind::Files(paths)
            }
            other => other,
        };
        if matches!(&kind, InputKind::Files(paths) if paths.is_empty()) {
            return Err(PipelineError::config(
                "compress input set is empty — give at least one file or pattern",
            ));
        }
        if matches!(kind, InputKind::Bytes(_)) {
            return Err(PipelineError::config(
                "Input::bytes feeds decompression; compress wants packets \
                 (Input::file/files/glob/trace/packets/source)",
            ));
        }
        // File-ingest knobs on a non-file input would be silently
        // ignored — reject them instead, like every other nonsense knob.
        if !matches!(&kind, InputKind::Files(_)) && (readers.is_some() || prefetch_mb.is_some()) {
            return Err(PipelineError::config(
                "readers/prefetch_mb tune file ingest and have no effect on in-memory or \
                 pre-opened inputs — drop them, or configure the source itself \
                 (e.g. MultiFileConfig) before Input::source",
            ));
        }

        // Routing: explicit wins; otherwise any engine/reader knob, a
        // multi-file set, or a stream-shaped input selects the engine —
        // exactly the dispatch the CLI used to hand-roll.
        let engine_knobs = threads.is_some()
            || batch_size.is_some()
            || channel_capacity.is_some()
            || idle_timeout.is_some()
            || prefetch_mb.is_some()
            || readers.is_some()
            || routing.is_some()
            || telemetry.is_some();
        let multi_file = matches!(&kind, InputKind::Files(p) if p.len() > 1);
        let use_streaming = match streaming {
            Some(s) => s,
            None => {
                engine_knobs
                    || multi_file
                    || matches!(kind, InputKind::Packets(_) | InputKind::Stream { .. })
            }
        };
        if !use_streaming && multi_file {
            return Err(PipelineError::config(
                "multiple input files always stream as one ordered trace — \
                 drop .streaming(false) or pass a single file",
            ));
        }
        if !use_streaming && engine_knobs {
            return Err(PipelineError::config(
                "threads/batch_size/channel_capacity/idle_timeout/readers/prefetch_mb/routing/\
                 telemetry tune the streaming engine — drop .streaming(false) to use them",
            ));
        }

        // A stats interval implies metrics: sampling a disabled registry
        // would emit nothing.
        let metrics = metrics.unwrap_or_else(|| {
            if stats_interval.is_some() {
                Metrics::enabled()
            } else {
                Metrics::disabled()
            }
        });
        let profiler = profiler.unwrap_or_else(Profiler::disabled);
        // The sampler thread lives exactly as long as the run: dropping
        // it (on success *and* on error) emits the final snapshot and
        // joins.
        let sampler = stats_interval.map(|interval| {
            Sampler::start(
                &metrics,
                interval,
                stats_format.unwrap_or_default(),
                stats_writer.unwrap_or_else(StatsSink::stderr),
            )
        });

        let context = format!("compress {}", inputs_desc.join(" "));
        let (bytes, mut report) = if use_streaming {
            run_streaming(
                kind,
                &context,
                params,
                format,
                threads,
                batch_size,
                channel_capacity,
                idle_timeout,
                prefetch_mb,
                readers,
                routing,
                telemetry.unwrap_or(false),
                &metrics,
                &profiler,
                cancel,
            )?
        } else {
            run_batch(kind, &context, params, format, &metrics, cancel)?
        };
        drop(sampler);
        if metrics.is_enabled() {
            report.metrics = Some(metrics.snapshot());
        }
        report.inputs = inputs_desc;
        report.output = sink.path();
        report.output_bytes = bytes.len() as u64;
        let bytes = sink.deliver(bytes)?;
        Ok(RunResult { report, bytes })
    }
}

/// The streaming route: build the engine, wire the input as a packet
/// stream (with its [`IoStats`] handle when it has one), and compress to
/// archive bytes.
#[allow(clippy::too_many_arguments)]
fn run_streaming(
    kind: InputKind<'_>,
    context: &str,
    params: Params,
    format: ArchiveFormat,
    threads: Option<usize>,
    batch_size: Option<usize>,
    channel_capacity: Option<usize>,
    idle_timeout: Option<Duration>,
    prefetch_mb: Option<u64>,
    readers: Option<usize>,
    routing: Option<Routing>,
    telemetry: bool,
    metrics: &Metrics,
    profiler: &Profiler,
    cancel: Option<Arc<AtomicBool>>,
) -> Result<(Vec<u8>, Report), PipelineError> {
    let mut builder = StreamingEngine::builder()
        .params(params)
        .format(format)
        .idle_timeout(idle_timeout)
        .telemetry(telemetry)
        .metrics(metrics.clone())
        .profiler(profiler.clone());
    if let Some(flag) = cancel {
        builder = builder.cancel_flag(flag);
    }
    if let Some(t) = threads {
        builder = builder.shards(t);
    }
    let batch = batch_size.unwrap_or(1024);
    builder = builder.batch_size(batch);
    if let Some(c) = channel_capacity {
        builder = builder.channel_capacity(c);
    }
    if let Some(r) = routing {
        builder = builder.routing(r);
    }
    if let Some(r) = readers {
        // The reader threads decode the batches; they are the natural
        // routing-worker count too.
        builder = builder.routers(r);
    }
    let engine = builder
        .try_build()
        .map_err(|e| PipelineError::config(e.to_string()))?;
    let prefetch = prefetch_mb.map(PrefetchConfig::with_chunk_mb);

    let read_err = |e| PipelineError::read(context.to_string(), e);
    let (bytes, engine_report, stats) = match kind {
        InputKind::Files(paths) => {
            // An explicit reader count routes even a single file through
            // the multi-file source: its reader thread moves decode off
            // the router, which is what the knob asks for.
            let (stats, bytes_report) = if paths.len() > 1 || readers.is_some() {
                let source = MultiFileSource::open(
                    &paths,
                    MultiFileConfig {
                        readers: readers.unwrap_or(2),
                        batch_packets: batch,
                        queue_batches: 4,
                        prefetch,
                    },
                )
                .map_err(read_err)?;
                let stats = source.stats();
                // Teed before the read starts, so live snapshots see
                // reader bytes/wait while the run is in flight.
                stats.attach_metrics(metrics);
                // Batch-native hand-off: the reader threads already
                // built whole decoded batches, so routing workers
                // take them one channel receive at a time instead of
                // re-iterating packet by packet.
                let br = engine
                    .compress_batches_to_bytes(source.into_packets())
                    .map_err(read_err)?;
                (stats, br)
            } else {
                let source = FileSource::open_with(&paths[0], prefetch).map_err(read_err)?;
                let stats = source.stats();
                stats.attach_metrics(metrics);
                let br = engine
                    .compress_stream_to_bytes(source.into_packets())
                    .map_err(read_err)?;
                (stats, br)
            };
            (bytes_report.0, bytes_report.1, Some(stats))
        }
        InputKind::Trace(trace) => {
            let (b, er) = engine
                .compress_stream_to_bytes(trace.iter().cloned().map(Ok))
                .map_err(read_err)?;
            (b, er, None)
        }
        InputKind::Packets(packets) => {
            let (b, er) = engine
                .compress_stream_to_bytes(packets.map(Ok))
                .map_err(read_err)?;
            (b, er, None)
        }
        InputKind::Stream { stats, packets, .. } => {
            stats.attach_metrics(metrics);
            let (b, er) = engine.compress_stream_to_bytes(packets).map_err(read_err)?;
            (b, er, Some(stats))
        }
        InputKind::Patterns(_) | InputKind::Bytes(_) => {
            unreachable!("patterns expanded and bytes rejected before routing")
        }
    };

    let mut report = Report::from_engine(engine_report, format, stats.as_ref());
    if telemetry {
        // Summarize the FZT1 rows straight off the archive just written
        // — the same decode path `info` uses, so the two cannot drift.
        let summary = flowzip_core::container::v2_telemetry(&bytes)
            .map_err(|e| PipelineError::decode(context.to_string(), e))?
            .as_ref()
            .map(TelemetrySummary::from_telemetry);
        if let Some(a) = report.archive.as_mut() {
            a.telemetry = summary;
        }
    }
    Ok((bytes, report))
}

/// The batch route: collect the input into one in-memory [`Trace`], run
/// the classic [`Compressor`], and encode in the configured container.
fn run_batch(
    kind: InputKind<'_>,
    context: &str,
    params: Params,
    format: ArchiveFormat,
    metrics: &Metrics,
    cancel: Option<Arc<AtomicBool>>,
) -> Result<(Vec<u8>, Report), PipelineError> {
    let started = Instant::now();
    let read_err = |e| PipelineError::read(context.to_string(), e);
    let cancel = cancel.map(CancelFlag::new).unwrap_or_default();
    let mut stats = IoStats::new();
    let owned: Trace;
    let trace: &Trace = match kind {
        InputKind::Trace(t) => t,
        InputKind::Files(paths) => {
            debug_assert_eq!(paths.len(), 1, "multi-file batch rejected in run()");
            // A plain timed read: blocked read() time still lands in the
            // report's read-wait split, like the streaming path.
            let source = FileSource::open(&paths[0]).map_err(read_err)?;
            stats = source.stats();
            stats.attach_metrics(metrics);
            let mut t = Trace::new();
            for p in source.into_packets() {
                // Cancellation cuts the collection; the compressor then
                // runs over the prefix read so far — a valid partial
                // archive, mirroring the streaming drain.
                if cancel.is_cancelled() {
                    break;
                }
                t.push(p.map_err(read_err)?);
            }
            owned = t;
            &owned
        }
        InputKind::Packets(packets) => {
            let mut t = Trace::new();
            for p in packets {
                t.push(p);
            }
            owned = t;
            &owned
        }
        InputKind::Stream {
            stats: source_stats,
            packets,
            ..
        } => {
            // The source's counters still feed the read-wait split even
            // on the batch route.
            stats = source_stats;
            stats.attach_metrics(metrics);
            let mut t = Trace::new();
            for p in packets {
                if cancel.is_cancelled() {
                    break;
                }
                t.push(p.map_err(read_err)?);
            }
            owned = t;
            &owned
        }
        InputKind::Patterns(_) | InputKind::Bytes(_) => {
            unreachable!("patterns expanded and bytes rejected before routing")
        }
    };

    let (archive, mut comp) = Compressor::new(params).compress(trace);
    // The report's sizes/ratios must describe the container actually
    // written, not the compressor's internal v1 encode.
    let ser = Instant::now();
    let bytes = match format {
        ArchiveFormat::V1 => archive.to_bytes(),
        ArchiveFormat::V2 => {
            let (bytes, sizes) = archive.encode_v2();
            comp.sizes = sizes;
            if comp.tsh_bytes > 0 {
                comp.ratio_vs_tsh = sizes.total() as f64 / comp.tsh_bytes as f64;
            }
            if comp.packets > 0 {
                comp.ratio_vs_headers =
                    sizes.total() as f64 / (comp.packets * HEADER_BYTES as u64) as f64;
            }
            bytes
        }
    };
    let serialize_secs = ser.elapsed().as_secs_f64();

    let mut report = Report::new(Mode::Compress);
    report.packets = comp.packets;
    report.flows = comp.flows;
    report.archive = Some(ArchiveSummary {
        format,
        sections: 1,
        file_bytes: bytes.len() as u64,
        short_templates: comp.clusters,
        long_templates: comp.long_flows,
        addresses: comp.addresses,
        sizes: Some(comp.sizes),
        has_metadata: matches!(format, ArchiveFormat::V2),
        telemetry: None,
    });
    let mut timing = Timing::new(
        started.elapsed().as_secs_f64(),
        stats.read_wait_secs(),
        comp.packets,
        comp.tsh_bytes,
    );
    timing.serialize_secs = serialize_secs;
    report.timing = Some(timing);
    report.compression = Some(comp);
    Ok((bytes, report))
}
