//! [`Pipeline::query`]: archive in, *matching* packets out — the
//! session wrapper around the core query planner
//! ([`flowzip_core::query_bytes`]), with flow-spec parsing, optional
//! trace output, planner metrics and the unified [`Report`].

use crate::compress::RunResult;
use crate::error::PipelineError;
use crate::input::{Input, InputKind};
use crate::report::{Mode, Report, Timing};
use crate::sink::Sink;
use crate::Pipeline;
use flowzip_core::{query_bytes, ArchiveFormat, DecompressParams, FlowQuery};
use flowzip_obs::{names, Metrics};
use flowzip_trace::reader::CaptureFormat;
use flowzip_trace::{pcap, tsh, FiveTuple, Timestamp};
use std::time::Instant;

/// Parses a CLI flow spec `SRC_IP:PORT->DST_IP:PORT` (e.g.
/// `172.20.1.9:4242->193.5.9.1:80`) into a TCP five-tuple. Matching is
/// conversation-level, so either direction of the flow works.
///
/// # Errors
///
/// A description of what failed to parse.
pub fn parse_flow_spec(spec: &str) -> Result<FiveTuple, String> {
    let (src, dst) = spec
        .split_once("->")
        .ok_or_else(|| format!("flow spec `{spec}` wants SRC_IP:PORT->DST_IP:PORT"))?;
    let endpoint = |s: &str| -> Result<(std::net::Ipv4Addr, u16), String> {
        let (ip, port) = s
            .rsplit_once(':')
            .ok_or_else(|| format!("endpoint `{s}` wants IP:PORT"))?;
        Ok((
            ip.parse().map_err(|_| format!("bad IPv4 address `{ip}`"))?,
            port.parse().map_err(|_| format!("bad port `{port}`"))?,
        ))
    };
    let (src_ip, src_port) = endpoint(src.trim())?;
    let (dst_ip, dst_port) = endpoint(dst.trim())?;
    Ok(FiveTuple::tcp(src_ip, src_port, dst_ip, dst_port))
}

/// Builder for one query session. Construct with [`Pipeline::query`].
#[derive(Debug)]
pub struct QueryBuilder<'a> {
    input: Option<Input<'a>>,
    sink: Option<Sink<'a>>,
    query: FlowQuery,
    params: DecompressParams,
    output_format: CaptureFormat,
    metrics: Option<Metrics>,
}

impl Pipeline {
    /// Starts a query session: one archive [`Input`], a predicate
    /// ([`flow`](QueryBuilder::flow) and/or a time window), an optional
    /// trace [`Sink`] for the matching packets, then
    /// [`run()`](QueryBuilder::run).
    pub fn query<'a>() -> QueryBuilder<'a> {
        QueryBuilder {
            input: None,
            sink: None,
            query: FlowQuery::default(),
            params: DecompressParams::default(),
            output_format: CaptureFormat::Tsh,
            metrics: None,
        }
    }
}

impl<'a> QueryBuilder<'a> {
    /// The archive input (required): a `.fzc` file or in-memory bytes.
    pub fn input(mut self, input: Input<'a>) -> Self {
        self.input = Some(input);
        self
    }

    /// Where to write the matching packets (optional — without a sink
    /// the session only reports).
    pub fn sink(mut self, sink: Sink<'a>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Match this conversation (either direction).
    pub fn flow(mut self, tuple: FiveTuple) -> Self {
        self.query.flow = Some(tuple);
        self
    }

    /// Match this conversation, given as `SRC_IP:PORT->DST_IP:PORT`.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Config`] when the spec does not parse.
    pub fn flow_spec(self, spec: &str) -> Result<Self, PipelineError> {
        let tuple = parse_flow_spec(spec).map_err(PipelineError::config)?;
        Ok(self.flow(tuple))
    }

    /// Keep only flows starting at or after this time (seconds).
    pub fn from_secs(mut self, secs: f64) -> Self {
        self.query.from = Some(Timestamp::from_micros((secs * 1e6) as u64));
        self
    }

    /// Keep only flows starting at or before this time (seconds).
    pub fn to_secs(mut self, secs: f64) -> Self {
        self.query.to = Some(Timestamp::from_micros((secs * 1e6) as u64));
        self
    }

    /// The full [`FlowQuery`], overriding any flow/window set so far.
    pub fn query(mut self, query: FlowQuery) -> Self {
        self.query = query;
        self
    }

    /// RNG seed for synthesized addresses and ports (must match the
    /// decompression seed the flow tuples came from).
    pub fn seed(mut self, seed: u64) -> Self {
        self.params.seed = seed;
        self
    }

    /// Full decompression knobs (timing gaps, default RTT, seed).
    pub fn params(mut self, params: DecompressParams) -> Self {
        self.params = params;
        self
    }

    /// Capture format for the sink (default TSH; pcap also supported).
    pub fn output_format(mut self, format: CaptureFormat) -> Self {
        self.output_format = format;
        self
    }

    /// Records planner counters (`query.sections_scanned`, …) into this
    /// registry; the final dump lands on [`Report::metrics`].
    pub fn metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Runs the session: read the archive, prune sections against the
    /// v2.1 metadata, decode + filter + synthesize the survivors, and
    /// report pruning effectiveness (optionally delivering the matching
    /// packets to the sink).
    ///
    /// # Errors
    ///
    /// [`PipelineError::Config`] for inputs that are not archive-shaped;
    /// [`PipelineError::Read`] / [`PipelineError::Decode`] for unreadable
    /// or invalid archives; [`PipelineError::Write`] for sink failures.
    pub fn run(self) -> Result<RunResult, PipelineError> {
        let QueryBuilder {
            input,
            sink,
            query,
            params,
            output_format,
            metrics,
        } = self;
        let input = input.ok_or_else(|| {
            PipelineError::config("query session has no input — call .input(Input::…)")
        })?;
        let started = Instant::now();
        let inputs_desc = input.describe();
        let context = format!("query {}", inputs_desc.join(" "));

        let bytes = match input.kind {
            InputKind::Bytes(bytes) => bytes,
            InputKind::Files(paths) if paths.len() == 1 => std::fs::read(&paths[0])
                .map_err(|e| PipelineError::read(context.clone(), e.into()))?,
            InputKind::Files(_) | InputKind::Patterns(_) => {
                return Err(PipelineError::config(
                    "query reads exactly one archive — pass Input::file(path) \
                     or Input::bytes(vec)",
                ));
            }
            InputKind::Trace(_) | InputKind::Packets(_) | InputKind::Stream { .. } => {
                return Err(PipelineError::config(
                    "query wants a serialized archive (Input::file or Input::bytes), \
                     not a packet stream",
                ));
            }
        };
        let read_wait = started.elapsed().as_secs_f64();

        let outcome = query_bytes(&bytes, &query, &params)
            .map_err(|e| PipelineError::decode(context.clone(), e))?;
        let stats = outcome.stats;

        if let Some(m) = &metrics {
            m.counter(names::QUERY_SECTIONS_TOTAL)
                .add(stats.sections_total);
            m.counter(names::QUERY_SECTIONS_SCANNED)
                .add(stats.sections_scanned);
            m.counter(names::QUERY_SECTIONS_SKIPPED_TIME)
                .add(stats.sections_skipped_time);
            m.counter(names::QUERY_SECTIONS_SKIPPED_BLOOM)
                .add(stats.sections_skipped_bloom);
            m.counter(names::QUERY_FLOWS_MATCHED)
                .add(stats.flows_matched);
            m.counter(names::QUERY_PACKETS).add(stats.packets);
        }

        // Archive facts from the header walk alone — inspecting via a
        // full decode would throw away exactly the work pruning saved.
        let summary = crate::report::ArchiveSummary::from_header(&bytes, stats.has_metadata)
            .map_err(|e| PipelineError::decode(context.clone(), e))?;

        let mut report = Report::new(Mode::Query);
        report.inputs = inputs_desc;
        report.output = sink.as_ref().and_then(Sink::path);
        report.packets = stats.packets;
        report.flows = stats.flows_matched;
        report.archive = Some(summary);
        report.query = Some(stats);

        let out_bytes = match &sink {
            None => Vec::new(),
            Some(_) => match output_format {
                CaptureFormat::Tsh => tsh::to_bytes(&outcome.trace),
                CaptureFormat::Pcap => pcap::to_bytes(&outcome.trace),
            },
        };
        report.output_bytes = out_bytes.len() as u64;
        report.timing = Some(Timing::new(
            started.elapsed().as_secs_f64(),
            read_wait,
            stats.packets,
            stats.packets * tsh::RECORD_BYTES as u64,
        ));
        if let Some(m) = metrics {
            if m.is_enabled() {
                report.metrics = Some(m.snapshot());
            }
        }
        let bytes = match sink {
            Some(sink) => sink.deliver(out_bytes)?,
            None => None,
        };
        Ok(RunResult { report, bytes })
    }
}

/// Archive facts obtainable without decoding payloads — what a query
/// session reports instead of a full
/// [`ArchiveSummary::inspect`](crate::report::ArchiveSummary::inspect).
impl crate::report::ArchiveSummary {
    pub(crate) fn from_header(
        bytes: &[u8],
        has_metadata: bool,
    ) -> Result<crate::report::ArchiveSummary, flowzip_core::datasets::CodecError> {
        let format = ArchiveFormat::detect(bytes)?;
        let (short_templates, long_templates, addresses, sections) = match format {
            ArchiveFormat::V1 => (0, 0, 0, 1),
            ArchiveFormat::V2 => flowzip_core::container::v2_counts(bytes)?,
        };
        // FZT1 rows decode from the trailing side-section alone — still
        // no payload decode, so pruning's savings survive the summary.
        let telemetry = match format {
            ArchiveFormat::V1 => None,
            ArchiveFormat::V2 => flowzip_core::container::v2_telemetry(bytes)?
                .as_ref()
                .map(crate::report::TelemetrySummary::from_telemetry),
        };
        Ok(crate::report::ArchiveSummary {
            format,
            sections,
            file_bytes: bytes.len() as u64,
            short_templates,
            long_templates,
            addresses,
            sizes: None,
            has_metadata,
            telemetry,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pipeline;
    use flowzip_core::{CompressedTrace, Decompressor};
    use flowzip_traffic::web::{WebTrafficConfig, WebTrafficGenerator};

    /// A multi-section v2.1 archive, built through the front door: a
    /// streaming compress session with four shards.
    fn sectioned_archive(flows: usize, seed: u64) -> Vec<u8> {
        let trace = WebTrafficGenerator::new(
            WebTrafficConfig {
                flows,
                ..WebTrafficConfig::default()
            },
            seed,
        )
        .generate();
        Pipeline::compress()
            .input(Input::trace(&trace))
            .sink(Sink::bytes())
            .streaming(true)
            .threads(4)
            .run()
            .unwrap()
            .into_bytes()
            .unwrap()
    }

    #[test]
    fn query_session_prunes_and_reports() {
        let bytes = sectioned_archive(300, 9);
        let full = Decompressor::new(DecompressParams::default())
            .decompress(&CompressedTrace::from_bytes(&bytes).unwrap());
        let target = full.packets()[0].tuple();
        let expected: Vec<_> = full
            .packets()
            .iter()
            .filter(|p| p.tuple().same_conversation(&target))
            .cloned()
            .collect();

        let metrics = Metrics::enabled();
        let result = Pipeline::query()
            .input(Input::bytes(bytes))
            .sink(Sink::bytes())
            .flow(target)
            .metrics(metrics)
            .run()
            .unwrap();

        let report = result.report.clone();
        let q = report.query.expect("query stats present");
        assert!(q.has_metadata);
        assert_eq!(q.sections_total, 4);
        assert!(q.sections_scanned < q.sections_total, "{q:?}");
        assert_eq!(report.packets, expected.len() as u64);

        // The sink got exactly the matching packets, TSH-serialized.
        let expected_tsh = tsh::to_bytes(&flowzip_trace::Trace::from_packets(expected));
        assert_eq!(result.into_bytes().unwrap(), expected_tsh);

        // Planner counters landed in the metrics dump.
        let snap = report.metrics.clone().expect("metrics snapshot");
        assert_eq!(
            snap.counter(names::QUERY_SECTIONS_SCANNED),
            Some(q.sections_scanned)
        );
        assert_eq!(snap.counter(names::QUERY_PACKETS), Some(q.packets));

        // The JSON report carries the query group and archive facts.
        let json = report.to_json();
        assert!(json.contains("\"mode\": \"query\""), "{json}");
        assert!(json.contains("\"sections_scanned\""), "{json}");
        assert!(json.contains("\"has_metadata\": true"), "{json}");
        assert!(flowzip_obs::json::is_valid_json(&json));
    }

    #[test]
    fn sinkless_query_only_reports() {
        let bytes = sectioned_archive(60, 3);
        let result = Pipeline::query()
            .input(Input::bytes(bytes))
            .flow_spec("10.0.0.1:9999->10.0.0.2:80")
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(result.report.output_bytes, 0);
        assert!(result.bytes.is_none());
        let q = result.report.query.unwrap();
        assert_eq!(q.flows_matched, 0);
    }

    #[test]
    fn time_window_session_prunes_by_metadata() {
        let bytes = sectioned_archive(200, 5);
        let result = Pipeline::query()
            .input(Input::bytes(bytes))
            .from_secs(0.0)
            .to_secs(0.0)
            .run()
            .unwrap();
        let q = result.report.query.unwrap();
        assert!(q.sections_scanned <= q.sections_total);
        assert_eq!(q.sections_total, q.sections_scanned + q.sections_skipped());
    }

    #[test]
    fn flow_specs_parse_or_explain() {
        let t = parse_flow_spec("172.20.1.9:4242->193.5.9.1:80").unwrap();
        assert_eq!(
            t,
            FiveTuple::tcp(
                "172.20.1.9".parse().unwrap(),
                4242,
                "193.5.9.1".parse().unwrap(),
                80
            )
        );
        // Whitespace around the arrow is tolerated.
        assert_eq!(
            parse_flow_spec("172.20.1.9:4242 -> 193.5.9.1:80").unwrap(),
            t
        );
        for bad in [
            "172.20.1.9:4242",
            "a:1->b:2",
            "1.2.3.4->5.6.7.8:80",
            "1.2.3.4:99999->5.6.7.8:80",
        ] {
            assert!(parse_flow_spec(bad).is_err(), "{bad}");
        }
        // And the builder surfaces the parse error as a config error.
        let err = Pipeline::query().flow_spec("nonsense").unwrap_err();
        assert!(matches!(err, PipelineError::Config(_)));
    }

    #[test]
    fn query_rejects_non_archive_inputs() {
        let trace = WebTrafficGenerator::new(
            WebTrafficConfig {
                flows: 5,
                ..WebTrafficConfig::default()
            },
            1,
        )
        .generate();
        let err = Pipeline::query()
            .input(Input::trace(&trace))
            .run()
            .unwrap_err();
        assert!(matches!(err, PipelineError::Config(_)), "{err}");
        let err = Pipeline::query().run().unwrap_err();
        assert!(err.to_string().contains("no input"), "{err}");
    }
}
