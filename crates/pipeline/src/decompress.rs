//! [`Pipeline::decompress`]: the symmetric session — archive in,
//! synthesized trace out, serialized as TSH or pcap.

use crate::compress::RunResult;
use crate::error::PipelineError;
use crate::input::{Input, InputKind};
use crate::report::{ArchiveSummary, Mode, Report, Timing};
use crate::sink::Sink;
use crate::Pipeline;
use flowzip_core::{DecompressParams, Decompressor};
use flowzip_trace::reader::CaptureFormat;
use flowzip_trace::{pcap, tsh};
use std::time::Instant;

/// Builder for one decompression session. Construct with
/// [`Pipeline::decompress`].
#[derive(Debug)]
pub struct DecompressBuilder<'a> {
    input: Option<Input<'a>>,
    sink: Option<Sink<'a>>,
    params: DecompressParams,
    output_format: CaptureFormat,
}

impl Pipeline {
    /// Starts a decompression session: one archive [`Input`]
    /// ([`Input::file`] or [`Input::bytes`]), one trace [`Sink`], then
    /// [`run()`](DecompressBuilder::run).
    pub fn decompress<'a>() -> DecompressBuilder<'a> {
        DecompressBuilder {
            input: None,
            sink: None,
            params: DecompressParams::default(),
            output_format: CaptureFormat::Tsh,
        }
    }
}

impl<'a> DecompressBuilder<'a> {
    /// The archive input (required): a `.fzc` file or in-memory bytes.
    pub fn input(mut self, input: Input<'a>) -> Self {
        self.input = Some(input);
        self
    }

    /// The trace output (required).
    pub fn sink(mut self, sink: Sink<'a>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// RNG seed for synthesized addresses and ports.
    pub fn seed(mut self, seed: u64) -> Self {
        self.params.seed = seed;
        self
    }

    /// Full decompression knobs (timing gaps, default RTT, seed).
    pub fn params(mut self, params: DecompressParams) -> Self {
        self.params = params;
        self
    }

    /// Capture format to serialize the synthesized trace in (default:
    /// TSH; pcap also supported).
    pub fn output_format(mut self, format: CaptureFormat) -> Self {
        self.output_format = format;
        self
    }

    /// Runs the session: read the archive, decode it, synthesize the
    /// trace per §4, serialize in the chosen capture format, deliver to
    /// the sink, and report.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Config`] for inputs that are not archive-shaped;
    /// [`PipelineError::Read`] / [`PipelineError::Decode`] for unreadable
    /// or invalid archives; [`PipelineError::Write`] for sink failures.
    pub fn run(self) -> Result<RunResult, PipelineError> {
        let DecompressBuilder {
            input,
            sink,
            params,
            output_format,
        } = self;
        let input = input.ok_or_else(|| {
            PipelineError::config("decompress session has no input — call .input(Input::…)")
        })?;
        let sink = sink.ok_or_else(|| {
            PipelineError::config("decompress session has no sink — call .sink(Sink::…)")
        })?;
        let started = Instant::now();
        let inputs_desc = input.describe();
        let context = format!("decompress {}", inputs_desc.join(" "));

        let bytes = match input.kind {
            InputKind::Bytes(bytes) => bytes,
            InputKind::Files(paths) if paths.len() == 1 => std::fs::read(&paths[0])
                .map_err(|e| PipelineError::read(context.clone(), e.into()))?,
            InputKind::Files(_) | InputKind::Patterns(_) => {
                return Err(PipelineError::config(
                    "decompress reads exactly one archive — pass Input::file(path) \
                     or Input::bytes(vec)",
                ));
            }
            InputKind::Trace(_) | InputKind::Packets(_) | InputKind::Stream { .. } => {
                return Err(PipelineError::config(
                    "decompress wants a serialized archive (Input::file or Input::bytes), \
                     not a packet stream",
                ));
            }
        };
        let read_wait = started.elapsed().as_secs_f64();

        let (archive, summary) = ArchiveSummary::inspect_lean(&bytes)
            .map_err(|e| PipelineError::decode(context.clone(), e))?;
        let trace = Decompressor::new(params).decompress(&archive);

        let ser = Instant::now();
        let out_bytes = match output_format {
            CaptureFormat::Tsh => tsh::to_bytes(&trace),
            CaptureFormat::Pcap => pcap::to_bytes(&trace),
        };
        let serialize_secs = ser.elapsed().as_secs_f64();

        let mut report = Report::new(Mode::Decompress);
        report.inputs = inputs_desc;
        report.output = sink.path();
        report.packets = trace.len() as u64;
        report.flows = archive.flow_count() as u64;
        report.archive = Some(summary);
        let mut timing = Timing::new(
            started.elapsed().as_secs_f64(),
            read_wait,
            trace.len() as u64,
            trace.len() as u64 * tsh::RECORD_BYTES as u64,
        );
        timing.serialize_secs = serialize_secs;
        report.timing = Some(timing);
        report.output_bytes = out_bytes.len() as u64;
        let bytes = sink.deliver(out_bytes)?;
        Ok(RunResult { report, bytes })
    }
}
