//! The pipeline's error type: every failure a session can hit, each with
//! enough context (which file, which stage) to print as-is.

use flowzip_core::datasets::CodecError;
use flowzip_trace::TraceError;
use std::fmt;

/// What went wrong in a [`Pipeline`](crate::Pipeline) run.
///
/// Configuration mistakes (`threads == 0`, an empty file list, a glob
/// that matches nothing) are caught up front as [`PipelineError::Config`]
/// with a human-readable description — a misconfigured session errors
/// immediately instead of panicking, hanging, or silently compressing
/// nothing.
#[derive(Debug)]
pub enum PipelineError {
    /// The session configuration is invalid; the message says exactly
    /// which knob and why.
    Config(String),
    /// Reading or parsing packet input failed.
    Read {
        /// What was being read (file names, "packet stream", …).
        context: String,
        /// The underlying reader error.
        source: TraceError,
    },
    /// Decoding a compressed archive failed.
    Decode {
        /// What was being decoded.
        context: String,
        /// The underlying codec error.
        source: CodecError,
    },
    /// Writing the sink failed.
    Write {
        /// Where the output was going.
        context: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Config(msg) => write!(f, "{msg}"),
            PipelineError::Read { context, source } => write!(f, "{context}: {source}"),
            PipelineError::Decode { context, source } => write!(f, "{context}: {source}"),
            PipelineError::Write { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Config(_) => None,
            PipelineError::Read { source, .. } => Some(source),
            PipelineError::Decode { source, .. } => Some(source),
            PipelineError::Write { source, .. } => Some(source),
        }
    }
}

impl PipelineError {
    /// Shorthand for a [`PipelineError::Config`].
    pub(crate) fn config(msg: impl Into<String>) -> PipelineError {
        PipelineError::Config(msg.into())
    }

    /// Wraps a reader error with its input context.
    pub(crate) fn read(context: impl Into<String>, source: TraceError) -> PipelineError {
        PipelineError::Read {
            context: context.into(),
            source,
        }
    }

    /// Wraps a codec error with its archive context.
    pub(crate) fn decode(context: impl Into<String>, source: CodecError) -> PipelineError {
        PipelineError::Decode {
            context: context.into(),
            source,
        }
    }

    /// Wraps a sink write error with its destination context.
    pub(crate) fn write(context: impl Into<String>, source: std::io::Error) -> PipelineError {
        PipelineError::Write {
            context: context.into(),
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context_and_source() {
        let e = PipelineError::read(
            "compress web.tsh",
            TraceError::TruncatedRecord { got: 3, need: 44 },
        );
        let s = e.to_string();
        assert!(s.contains("compress web.tsh"), "{s}");
        assert!(s.contains("truncated"), "{s}");

        let c = PipelineError::config("threads must be ≥ 1 (got 0)");
        assert_eq!(c.to_string(), "threads must be ≥ 1 (got 0)");
    }
}
