//! The unified run [`Report`]: one structure — and one stable JSON
//! schema — for compress, decompress and archive-inspection runs.
//!
//! Before the pipeline existed the CLI stitched three report shapes
//! together by hand: `CompressionReport` for batch runs, `EngineReport`
//! for streaming runs, and an ad-hoc JSON literal for `info`. This type
//! merges them: every mode fills the subset of fields it knows
//! ([`Report::compression`], [`Report::engine`], [`Report::archive`],
//! [`Report::timing`]), and [`Report::to_json`] emits the present fields
//! in one fixed order, so `flowzip compress --json`,
//! `flowzip decompress --json` and `flowzip info --json` all speak the
//! same schema.

use flowzip_core::datasets::CodecError;
use flowzip_core::{
    container, ArchiveFormat, ArchiveTelemetry, CompressedTrace, CompressionReport, DatasetSizes,
};
use flowzip_engine::EngineReport;
use flowzip_io::IoStats;
use flowzip_obs::json::JsonObject;
use flowzip_obs::StatsSnapshot;
use std::fmt;

// The shared escaping helper (kept at this path — it predates
// `flowzip-obs` and callers import it from here).
pub use flowzip_obs::json::json_escape;

/// What kind of run the report describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Packets in, archive out.
    Compress,
    /// Archive in, synthesized trace out.
    Decompress,
    /// Archive metadata only (`flowzip info`).
    Info,
    /// Archive in, *matching* packets out (`flowzip query`): the
    /// planner decodes only sections the v2.1 metadata cannot rule out.
    Query,
}

impl Mode {
    /// The JSON `"mode"` value.
    pub fn as_str(self) -> &'static str {
        match self {
            Mode::Compress => "compress",
            Mode::Decompress => "decompress",
            Mode::Info => "info",
            Mode::Query => "query",
        }
    }
}

/// Archive-shaped facts: container layout plus dataset footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveSummary {
    /// Container layout written or read.
    pub format: ArchiveFormat,
    /// Archive sections (v2: per shard; v1: always 1).
    pub sections: u64,
    /// Whole-file size in bytes.
    pub file_bytes: u64,
    /// `short-flows-template` entries (cluster centers).
    pub short_templates: u64,
    /// `long-flows-template` entries (verbatim long flows).
    pub long_templates: u64,
    /// Unique destination addresses.
    pub addresses: u64,
    /// Byte footprint per §3 dataset, when the run measured it
    /// (inspection and compress runs always do; decompress skips the
    /// measurement when it would cost a full v1 re-encode).
    pub sizes: Option<DatasetSizes>,
    /// Whether the archive carries the rev 2.1 per-section metadata
    /// block (always `false` for v1).
    pub has_metadata: bool,
    /// Aggregated rev 2.2 per-flow telemetry, when the archive carries
    /// an `FZT1` side-section (always `None` for v1 and plain v2).
    pub telemetry: Option<TelemetrySummary>,
}

/// Aggregate view of the rev 2.2 `FZT1` per-flow telemetry rows — the
/// RTT and retransmission headline figures `info` and `query` print
/// without handing the caller every row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetrySummary {
    /// Telemetry rows (one per stored flow).
    pub flows: u64,
    /// Flows that produced at least one RTT sample.
    pub rtt_flows: u64,
    /// RTT samples across all flows (handshake + ack-clock).
    pub rtt_samples: u64,
    /// Mean of the per-flow smoothed RTT estimates, microseconds
    /// (over [`TelemetrySummary::rtt_flows`]; 0 when no flow sampled).
    pub mean_rtt_us: u64,
    /// 95th percentile of the per-flow RTT estimates, microseconds.
    pub p95_rtt_us: u64,
    /// Retransmissions detected via triple duplicate ACKs.
    pub retrans_fast: u64,
    /// Retransmissions attributed to timeout (no dup-ACK evidence).
    pub retrans_timeout: u64,
}

impl TelemetrySummary {
    /// Folds decoded `FZT1` rows into the headline aggregate.
    pub fn from_telemetry(t: &ArchiveTelemetry) -> TelemetrySummary {
        let mut s = TelemetrySummary {
            flows: t.flow_count(),
            rtt_flows: 0,
            rtt_samples: 0,
            mean_rtt_us: 0,
            p95_rtt_us: 0,
            retrans_fast: 0,
            retrans_timeout: 0,
        };
        let mut rtts: Vec<u64> = Vec::new();
        for f in t.sections.iter().flat_map(|sec| &sec.flows) {
            s.rtt_samples += f.rtt_samples;
            s.retrans_fast += f.retrans_fast;
            s.retrans_timeout += f.retrans_timeout;
            if f.rtt_samples > 0 {
                rtts.push(f.rtt_us);
            }
        }
        if !rtts.is_empty() {
            rtts.sort_unstable();
            s.rtt_flows = rtts.len() as u64;
            s.mean_rtt_us = rtts.iter().sum::<u64>() / s.rtt_flows;
            // Nearest-rank p95: the smallest value ≥ 95% of the sample.
            s.p95_rtt_us = rtts[(rtts.len() * 95).div_ceil(100).max(1) - 1];
        }
        s
    }

    /// Fast + timeout retransmissions combined.
    pub fn retransmissions(&self) -> u64 {
        self.retrans_fast + self.retrans_timeout
    }
}

impl ArchiveSummary {
    /// Summarizes serialized archive bytes: detects the container,
    /// decodes it, and measures the real file layout (a multi-section v2
    /// index would not survive a re-encode). Returns the decoded archive
    /// too, so callers needing its contents decode once.
    ///
    /// # Errors
    ///
    /// [`CodecError`] when the bytes are not a valid v1/v2 archive.
    pub fn inspect(bytes: &[u8]) -> Result<(CompressedTrace, ArchiveSummary), CodecError> {
        ArchiveSummary::inspect_inner(bytes, true)
    }

    /// [`ArchiveSummary::inspect`] without the per-dataset size
    /// measurement when it is not already cheap: v2 sizes come from a
    /// header scan either way, but v1 sizes would cost a full re-encode
    /// of the archive — which a decompress session has no use for.
    pub fn inspect_lean(bytes: &[u8]) -> Result<(CompressedTrace, ArchiveSummary), CodecError> {
        ArchiveSummary::inspect_inner(bytes, false)
    }

    fn inspect_inner(
        bytes: &[u8],
        measure_v1: bool,
    ) -> Result<(CompressedTrace, ArchiveSummary), CodecError> {
        let format = ArchiveFormat::detect(bytes)?;
        let archive = CompressedTrace::from_bytes(bytes)?;
        let (sections, sizes) = match format {
            ArchiveFormat::V1 => (1, measure_v1.then(|| archive.encode().1)),
            ArchiveFormat::V2 => (
                container::v2_counts(bytes)?.3,
                Some(container::v2_sizes(bytes)?),
            ),
        };
        let has_metadata = match format {
            ArchiveFormat::V1 => false,
            // `from_bytes` above already validated the block, so the
            // size measurement (when taken) or a direct header walk
            // answers presence cheaply.
            ArchiveFormat::V2 => match &sizes {
                Some(s) => s.metadata > 0,
                None => container::v2_metadata(bytes)?.is_some(),
            },
        };
        let telemetry = match format {
            ArchiveFormat::V1 => None,
            ArchiveFormat::V2 => container::v2_telemetry(bytes)?
                .as_ref()
                .map(TelemetrySummary::from_telemetry),
        };
        let summary = ArchiveSummary {
            format,
            sections,
            file_bytes: bytes.len() as u64,
            short_templates: archive.short_templates.len() as u64,
            long_templates: archive.long_templates.len() as u64,
            addresses: archive.addresses.len() as u64,
            sizes,
            has_metadata,
            telemetry,
        };
        Ok((archive, summary))
    }
}

/// Streaming-engine facts only a sharded run can know.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineSummary {
    /// Worker shards the run used.
    pub shards: usize,
    /// Flows force-closed by idle-timeout eviction.
    pub evicted_flows: u64,
}

/// Wall-clock accounting for a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timing {
    /// Wall-clock seconds for the whole run.
    pub elapsed_secs: f64,
    /// Seconds spent blocked waiting on input.
    pub read_wait_secs: f64,
    /// `elapsed − read_wait`, clamped at zero.
    pub compute_secs: f64,
    /// Seconds of serial serialization tail.
    pub serialize_secs: f64,
    /// Busiest-shard measured stage time (instrumented streaming runs
    /// only; 0 otherwise).
    pub stage_busy_secs: f64,
    /// `elapsed − read_wait − stage_busy`, clamped at zero — wall-clock
    /// the stage instruments did not see (instrumented runs only).
    pub unattributed_secs: f64,
    /// Packets consumed per wall-clock second.
    pub packets_per_sec: f64,
    /// Input throughput in TSH megabytes per second.
    pub mb_per_sec: f64,
}

impl Timing {
    /// Builds the throughput figures from totals, guarding `elapsed = 0`.
    pub(crate) fn new(
        elapsed_secs: f64,
        read_wait_secs: f64,
        packets: u64,
        tsh_bytes: u64,
    ) -> Timing {
        let read_wait_secs = read_wait_secs.min(elapsed_secs);
        let div = elapsed_secs.max(f64::EPSILON);
        Timing {
            elapsed_secs,
            read_wait_secs,
            compute_secs: (elapsed_secs - read_wait_secs).max(0.0),
            serialize_secs: 0.0,
            stage_busy_secs: 0.0,
            unattributed_secs: 0.0,
            packets_per_sec: packets as f64 / div,
            mb_per_sec: tsh_bytes as f64 / div / 1e6,
        }
    }
}

/// The unified run report every pipeline session returns.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// What kind of run this was.
    pub mode: Mode,
    /// Input names (paths, patterns, or `<in-memory …>` placeholders).
    pub inputs: Vec<String>,
    /// Output path, when the sink had one.
    pub output: Option<String>,
    /// Packets processed (consumed for compress, produced for
    /// decompress, stored for info).
    pub packets: u64,
    /// Flows processed.
    pub flows: u64,
    /// The batch-compatible §3/§5 compression report (compress runs).
    pub compression: Option<CompressionReport>,
    /// Streaming-engine figures (sharded compress runs only).
    pub engine: Option<EngineSummary>,
    /// Archive container facts (every mode that touched an archive).
    pub archive: Option<ArchiveSummary>,
    /// Query-planner effectiveness counters (query runs only).
    pub query: Option<flowzip_core::QueryStats>,
    /// Wall-clock accounting (compress and decompress runs).
    pub timing: Option<Timing>,
    /// Bytes delivered to the sink.
    pub output_bytes: u64,
    /// Final metrics-registry dump, when the session ran with
    /// observability enabled ([`CompressBuilder::metrics`] or a stats
    /// interval).
    ///
    /// [`CompressBuilder::metrics`]: crate::CompressBuilder::metrics
    pub metrics: Option<StatsSnapshot>,
}

impl Report {
    /// An empty report in `mode`; the session fills what it knows.
    pub fn new(mode: Mode) -> Report {
        Report {
            mode,
            inputs: Vec::new(),
            output: None,
            packets: 0,
            flows: 0,
            compression: None,
            engine: None,
            archive: None,
            query: None,
            timing: None,
            output_bytes: 0,
            metrics: None,
        }
    }

    /// An [`Mode::Info`] report for serialized archive bytes — what
    /// `flowzip info` prints.
    ///
    /// # Errors
    ///
    /// [`CodecError`] when the bytes are not a valid archive.
    pub fn inspect(bytes: &[u8]) -> Result<Report, CodecError> {
        let (archive, summary) = ArchiveSummary::inspect(bytes)?;
        let mut report = Report::new(Mode::Info);
        report.packets = archive.packet_count();
        report.flows = archive.flow_count() as u64;
        report.archive = Some(summary);
        Ok(report)
    }

    /// Folds an [`EngineReport`] into the unified [`Report`], charging
    /// the drained source's [`IoStats`] (when the input had one) to the
    /// read-wait/compute split — the same [`Timing`] clamp the batch and
    /// decompress routes use, so the report pipelines cannot drift. This
    /// is how compress sessions summarize streaming runs, and how
    /// embedders that drive the engine directly (e.g. `flowzip serve`'s
    /// per-window reports) produce the same stable schema.
    pub fn from_engine(er: EngineReport, format: ArchiveFormat, stats: Option<&IoStats>) -> Report {
        let mut report = Report::new(Mode::Compress);
        report.packets = er.report.packets;
        report.flows = er.report.flows;
        report.engine = Some(EngineSummary {
            shards: er.shards,
            evicted_flows: er.evicted_flows,
        });
        report.archive = Some(ArchiveSummary {
            format,
            sections: er.sections as u64,
            file_bytes: er.archive_bytes,
            short_templates: er.report.clusters,
            long_templates: er.report.long_flows,
            addresses: er.report.addresses,
            sizes: Some(er.report.sizes),
            has_metadata: matches!(format, ArchiveFormat::V2),
            telemetry: None,
        });
        // Raw-iterator runs carry no stats handle; their read-wait stays
        // at the engine's zero.
        let read_wait = stats.map_or(er.read_wait_secs, |s| s.read_wait_secs());
        let mut timing = Timing::new(
            er.elapsed_secs,
            read_wait,
            er.report.packets,
            er.report.tsh_bytes,
        );
        timing.serialize_secs = er.serialize_secs;
        timing.stage_busy_secs = er.stage_busy_secs;
        if er.stage_busy_secs > 0.0 {
            // Recompute the residual against *this* read-wait figure —
            // the source's IoStats may differ from the engine-side number
            // the EngineReport reconciled against.
            timing.unattributed_secs =
                (timing.elapsed_secs - timing.read_wait_secs - er.stage_busy_secs).max(0.0);
        }
        report.timing = Some(timing);
        report.compression = Some(er.report);
        report
    }

    /// Open-flow high-water mark, when the run tracked one.
    pub fn peak_active_flows(&self) -> u64 {
        self.compression.as_ref().map_or(0, |c| c.peak_active_flows)
    }

    /// Serializes the report as one JSON object in the **stable unified
    /// schema**: fields appear in a fixed order and absent groups are
    /// omitted (never emitted as `null`), so `compress --json`,
    /// `decompress --json` and `info --json` are the same shape with
    /// different subsets present.
    pub fn to_json(&self) -> String {
        let mut j = JsonObject::pretty();
        j.str("mode", self.mode.as_str());
        if !self.inputs.is_empty() {
            j.str_array("inputs", &self.inputs);
        }
        if let Some(out) = &self.output {
            j.str("output", out);
        }
        j.num("packets", self.packets);
        j.num("flows", self.flows);
        if let Some(c) = &self.compression {
            j.num("short_flows", c.short_flows);
            j.num("long_flows", c.long_flows);
            j.num("clusters", c.clusters);
            j.num("matched_flows", c.matched_flows);
            j.num("addresses", c.addresses);
            j.num("peak_active_flows", c.peak_active_flows);
            j.num("tsh_bytes", c.tsh_bytes);
            j.f6("ratio_vs_tsh", c.ratio_vs_tsh);
            j.f6("ratio_vs_headers", c.ratio_vs_headers);
        }
        if let Some(e) = &self.engine {
            j.num("shards", e.shards as u64);
            j.num("evicted_flows", e.evicted_flows);
        }
        if let Some(a) = &self.archive {
            j.str("format", &a.format.to_string());
            j.num("sections", a.sections);
            j.bool("has_metadata", a.has_metadata);
            j.num("file_bytes", a.file_bytes);
            j.num("archive_bytes", a.file_bytes);
            j.num("short_templates", a.short_templates);
            j.num("long_templates", a.long_templates);
            if self.compression.is_none() {
                j.num("addresses", a.addresses);
            }
            if let Some(t) = &a.telemetry {
                j.raw(
                    "telemetry",
                    &format!(
                        concat!(
                            "{{\n",
                            "    \"flows\": {},\n",
                            "    \"rtt_flows\": {},\n",
                            "    \"rtt_samples\": {},\n",
                            "    \"mean_rtt_us\": {},\n",
                            "    \"p95_rtt_us\": {},\n",
                            "    \"retrans_fast\": {},\n",
                            "    \"retrans_timeout\": {}\n",
                            "  }}"
                        ),
                        t.flows,
                        t.rtt_flows,
                        t.rtt_samples,
                        t.mean_rtt_us,
                        t.p95_rtt_us,
                        t.retrans_fast,
                        t.retrans_timeout,
                    ),
                );
            }
        }
        if let Some(q) = &self.query {
            j.num("sections_total", q.sections_total);
            j.num("sections_scanned", q.sections_scanned);
            j.num("sections_skipped", q.sections_skipped());
            j.num("sections_skipped_time", q.sections_skipped_time);
            j.num("sections_skipped_bloom", q.sections_skipped_bloom);
            j.num("flows_total", q.flows_total);
            j.num("flows_matched", q.flows_matched);
        }
        if let Some(t) = &self.timing {
            j.f6("elapsed_secs", t.elapsed_secs);
            j.f6("read_wait_secs", t.read_wait_secs);
            j.f6("compute_secs", t.compute_secs);
            j.f6("serialize_secs", t.serialize_secs);
            if t.stage_busy_secs > 0.0 {
                j.f6("stage_busy_secs", t.stage_busy_secs);
                j.f6("unattributed_secs", t.unattributed_secs);
            }
            j.f0("packets_per_sec", t.packets_per_sec);
            j.f2("mb_per_sec", t.mb_per_sec);
        }
        j.num("output_bytes", self.output_bytes);
        if let Some(sizes) = self.archive.as_ref().and_then(|a| a.sizes) {
            j.raw(
                "dataset_bytes",
                &format!(
                    concat!(
                        "{{\n",
                        "    \"header\": {},\n",
                        "    \"short_templates\": {},\n",
                        "    \"long_templates\": {},\n",
                        "    \"addresses\": {},\n",
                        "    \"time_seq\": {},\n",
                        "    \"metadata\": {},\n",
                        "    \"telemetry\": {}\n",
                        "  }}"
                    ),
                    sizes.header,
                    sizes.short_templates,
                    sizes.long_templates,
                    sizes.addresses,
                    sizes.time_seq,
                    sizes.metadata,
                    sizes.telemetry,
                ),
            );
        }
        if let Some(snap) = &self.metrics {
            if !snap.is_empty() {
                j.raw("metrics", &snap.to_json());
            }
        }
        j.finish()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mode {
            Mode::Compress => {
                if let Some(c) = &self.compression {
                    write!(f, "{c}")?;
                }
                match (&self.engine, &self.timing) {
                    (Some(e), Some(t)) => {
                        write!(
                            f,
                            "; {} shards, {:.2}s, {:.0} packets/s ({:.2} MB/s), \
                             peak {} active flows, {} evicted",
                            e.shards,
                            t.elapsed_secs,
                            t.packets_per_sec,
                            t.mb_per_sec,
                            self.peak_active_flows(),
                            e.evicted_flows
                        )?;
                        if t.read_wait_secs > 0.0 {
                            write!(
                                f,
                                "; read-wait {:.3}s / compute {:.3}s",
                                t.read_wait_secs, t.compute_secs
                            )?;
                        }
                        if let Some(a) = &self.archive {
                            write!(
                                f,
                                "; {} section archive, {} B, serial tail {:.4}s",
                                a.sections, a.file_bytes, t.serialize_secs
                            )?;
                        }
                    }
                    _ => write!(f, "; peak {} active flows", self.peak_active_flows())?,
                }
                Ok(())
            }
            Mode::Decompress => write!(
                f,
                "decompressed {} packets from {} flows ({} B written)",
                self.packets, self.flows, self.output_bytes
            ),
            Mode::Info => {
                let (format, bytes) = self
                    .archive
                    .as_ref()
                    .map(|a| (a.format.to_string(), a.file_bytes))
                    .unwrap_or_default();
                write!(
                    f,
                    "{format} archive: {} flows, {} packets, {bytes} B",
                    self.flows, self.packets
                )
            }
            Mode::Query => {
                write!(
                    f,
                    "query matched {} of {} flows ({} packets)",
                    self.query.as_ref().map_or(self.flows, |q| q.flows_matched),
                    self.query.as_ref().map_or(0, |q| q.flows_total),
                    self.packets,
                )?;
                if let Some(q) = &self.query {
                    write!(
                        f,
                        "; scanned {}/{} sections ({} skipped: {} by time, {} by bloom)",
                        q.sections_scanned,
                        q.sections_total,
                        q.sections_skipped(),
                        q.sections_skipped_time,
                        q.sections_skipped_bloom,
                    )?;
                    if !q.has_metadata {
                        write!(f, "; no v2.1 metadata — full scan")?;
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_quotes_and_controls() {
        assert_eq!(json_escape(r#"a"b"#), r#"a\"b"#);
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb"), "a\\u000ab");
    }

    #[test]
    fn empty_compress_report_is_well_formed() {
        let mut r = Report::new(Mode::Compress);
        r.inputs = vec!["a.tsh".to_string()];
        r.packets = 7;
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"mode\": \"compress\""), "{json}");
        assert!(json.contains("\"inputs\": [\"a.tsh\"]"), "{json}");
        assert!(json.contains("\"packets\": 7"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",\n}"), "no trailing comma: {json}");
    }

    #[test]
    fn display_modes_have_distinct_shapes() {
        let mut d = Report::new(Mode::Decompress);
        d.packets = 10;
        d.flows = 2;
        d.output_bytes = 440;
        assert_eq!(
            d.to_string(),
            "decompressed 10 packets from 2 flows (440 B written)"
        );
    }
}
