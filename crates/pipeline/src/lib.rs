//! **One `Pipeline` session API**: Source → Engine → Sink, for compress
//! *and* decompress.
//!
//! The workspace grew its capability crates bottom-up — the batch
//! [`Compressor`](flowzip_core::Compressor), the sharded
//! [`StreamingEngine`](flowzip_engine::StreamingEngine), the overlapped
//! ingest sources in [`flowzip_io`] — and with them a thicket of
//! overlapping entry points. This crate is the one front door: a
//! builder-style *session* that names the input once, the output once,
//! the tuning once, and routes internally to exactly the code path the
//! legacy entry points exposed (the equivalence property tests in
//! `tests/equivalence.rs` pin the output **byte-identical** to each one).
//!
//! ```text
//! Input ── file / files / glob / trace / packets / source ─┐
//!                                                          ▼
//!                                    Pipeline::compress()  ─ batch Compressor
//!                                          tuning          ─ or StreamingEngine
//!                                                          ▼
//! Sink ─── file / bytes / writer ◀─────────────────────────┘   + unified Report
//! ```
//!
//! # Compress
//!
//! ```
//! use flowzip_pipeline::{Input, Pipeline, Sink};
//! use flowzip_traffic::web::{WebTrafficConfig, WebTrafficGenerator};
//!
//! let trace = WebTrafficGenerator::new(
//!     WebTrafficConfig { flows: 100, ..Default::default() }, 7).generate();
//!
//! let result = Pipeline::compress()
//!     .input(Input::trace(&trace))
//!     .sink(Sink::bytes())
//!     .run()
//!     .unwrap();
//! let report = &result.report;
//! assert!(report.compression.as_ref().unwrap().ratio_vs_tsh < 0.10);
//! let archive_bytes = result.into_bytes().unwrap();
//!
//! // Decompress is the symmetric session: archive in, trace out.
//! let restored = Pipeline::decompress()
//!     .input(Input::bytes(archive_bytes))
//!     .sink(Sink::bytes())
//!     .run()
//!     .unwrap();
//! assert_eq!(restored.report.packets as usize, trace.len());
//! ```
//!
//! # Routing
//!
//! Unset, the session picks its engine the way the CLI used to:
//! engine/reader tuning (`threads`, `batch_size`, `idle_timeout`,
//! `readers`, `prefetch_mb`, `channel_capacity`), more than one input
//! file, or a stream-shaped input ([`Input::packets`], [`Input::source`])
//! select the sharded streaming engine; a single file or an in-memory
//! trace with no tuning runs the batch compressor.
//! [`CompressBuilder::streaming`] forces either route — and conflicting
//! combinations (multi-file batch, engine knobs with `streaming(false)`,
//! any zero-valued knob, an empty file list, a glob matching nothing) are
//! rejected up front with a descriptive [`PipelineError::Config`] instead
//! of panicking, hanging, or silently compressing nothing.
//!
//! # The unified report
//!
//! Every session returns one [`Report`] merging the batch
//! [`CompressionReport`](flowzip_core::CompressionReport), the streaming
//! [`EngineReport`](flowzip_engine::EngineReport) figures and the
//! [`IoStats`](flowzip_io::IoStats) read-wait/compute split behind one
//! stable [`Report::to_json`] schema — the same schema `flowzip compress
//! --json`, `flowzip decompress --json` and `flowzip info --json` print.

pub mod compress;
pub mod decompress;
pub mod error;
pub mod input;
pub mod query;
pub mod report;
pub mod sink;

pub use compress::{CompressBuilder, RunResult};
pub use decompress::DecompressBuilder;
pub use error::PipelineError;
pub use flowzip_engine::{CancelFlag, Routing};
pub use query::{parse_flow_spec, QueryBuilder};
// Observability knobs a session takes (`.metrics()`, `.profiler()`,
// `.stats_interval()`, …), re-exported so embedders need no direct
// `flowzip-obs` dependency.
pub use flowzip_obs::{Metrics, Profiler, Sampler, SnapshotFormat, StatsSink, StatsSnapshot};
pub use input::Input;
pub use report::{ArchiveSummary, EngineSummary, Mode, Report, TelemetrySummary, Timing};
pub use sink::Sink;

/// The session entry point: [`Pipeline::compress`] and
/// [`Pipeline::decompress`] start a builder each.
#[derive(Debug, Clone, Copy)]
pub struct Pipeline;
