//! [`Sink`] — where a session's serialized output goes.

use crate::error::PipelineError;
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

/// One session output: a file, an in-memory byte buffer returned from
/// [`run()`](crate::CompressBuilder::run), or any [`Write`]r you own.
pub struct Sink<'a> {
    pub(crate) kind: SinkKind<'a>,
}

pub(crate) enum SinkKind<'a> {
    File(PathBuf),
    Bytes,
    Writer(Box<dyn Write + 'a>),
}

impl<'a> Sink<'a> {
    /// Write the output to `path` (created or truncated).
    pub fn file(path: impl AsRef<Path>) -> Sink<'static> {
        Sink {
            kind: SinkKind::File(path.as_ref().to_path_buf()),
        }
    }

    /// Keep the output in memory;
    /// [`RunResult::into_bytes`](crate::RunResult::into_bytes) hands it
    /// back.
    pub fn bytes() -> Sink<'static> {
        Sink {
            kind: SinkKind::Bytes,
        }
    }

    /// Stream the output into any writer (a socket, a compressor, a
    /// test buffer).
    pub fn writer(writer: impl Write + 'a) -> Sink<'a> {
        Sink {
            kind: SinkKind::Writer(Box::new(writer)),
        }
    }

    /// The sink's path, when it has one (for the report).
    pub(crate) fn path(&self) -> Option<String> {
        match &self.kind {
            SinkKind::File(p) => Some(p.display().to_string()),
            _ => None,
        }
    }

    /// The scratch path a file sink writes before the atomic rename —
    /// `<path>.part` in the same directory. Signal handlers register
    /// this path so an interrupted run unlinks its half-written scratch
    /// file instead of leaving a truncated archive behind; readers
    /// watching `path` never observe a partial write at all.
    pub fn partial_path(path: &Path) -> PathBuf {
        let mut name = path.file_name().unwrap_or_default().to_os_string();
        name.push(".part");
        path.with_file_name(name)
    }

    /// Delivers `bytes` to the sink. Returns the buffer back for
    /// [`SinkKind::Bytes`], `None` otherwise. File delivery is atomic:
    /// bytes land in [`Sink::partial_path`] first and are renamed into
    /// place only once fully written, so `path` either holds the old
    /// content or the complete new archive — never a truncation.
    pub(crate) fn deliver(self, bytes: Vec<u8>) -> Result<Option<Vec<u8>>, PipelineError> {
        match self.kind {
            SinkKind::File(path) => {
                let part = Sink::partial_path(&path);
                std::fs::write(&part, &bytes)
                    .map_err(|e| PipelineError::write(format!("write {}", part.display()), e))?;
                std::fs::rename(&part, &path).map_err(|e| {
                    std::fs::remove_file(&part).ok();
                    PipelineError::write(format!("rename into {}", path.display()), e)
                })?;
                Ok(None)
            }
            SinkKind::Bytes => Ok(Some(bytes)),
            SinkKind::Writer(mut w) => {
                w.write_all(&bytes)
                    .and_then(|()| w.flush())
                    .map_err(|e| PipelineError::write("write sink", e))?;
                Ok(None)
            }
        }
    }
}

impl fmt::Debug for Sink<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            SinkKind::File(p) => f.debug_tuple("Sink::file").field(p).finish(),
            SinkKind::Bytes => write!(f, "Sink::bytes"),
            SinkKind::Writer(_) => write!(f, "Sink::writer(..)"),
        }
    }
}
