//! Pipeline-level observability pins: live JSON-lines snapshots obey
//! the stats schema, the final report embeds the registry dump, the
//! stats knobs validate, and the batch route still feeds reader
//! metrics.

use flowzip_obs::json::is_valid_json;
use flowzip_obs::names;
use flowzip_pipeline::{Input, Metrics, Pipeline, Sink, SnapshotFormat, StatsSink};
use flowzip_trace::tsh;
use flowzip_traffic::web::{WebTrafficConfig, WebTrafficGenerator};
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn web_trace(flows: usize, seed: u64) -> flowzip_trace::Trace {
    WebTrafficGenerator::new(
        WebTrafficConfig {
            flows,
            duration_secs: 20.0,
            ..WebTrafficConfig::default()
        },
        seed,
    )
    .generate()
}

/// A clonable in-memory sink the test reads back after the run.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn live_stats_emit_at_least_one_pinned_json_line() {
    let trace = web_trace(150, 11);
    let buf = SharedBuf::default();
    let result = Pipeline::compress()
        .input(Input::trace(&trace))
        .sink(Sink::bytes())
        .threads(2)
        .stats_interval(Duration::from_millis(5))
        .stats_writer(StatsSink::new(Box::new(buf.clone())))
        .run()
        .unwrap();
    let out = buf.contents();
    let lines: Vec<&str> = out.lines().collect();
    assert!(!lines.is_empty(), "no snapshot lines: {out:?}");
    for line in &lines {
        assert!(is_valid_json(line), "{line}");
        assert!(
            line.starts_with(r#"{"type":"flowzip.stats","seq":"#),
            "{line}"
        );
        for key in [
            r#""packets":"#,
            r#""packets_per_sec":"#,
            r#""active_flows":"#,
            r#""evicted_flows":"#,
            r#""queue_depth":["#,
            r#""counters":{"#,
            r#""gauges":{"#,
            r#""histograms":{"#,
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
    }
    // The final (stop-time) snapshot saw the whole run.
    let last = lines.last().unwrap();
    assert!(
        last.contains(&format!(r#""packets":{}"#, trace.len())),
        "{last}"
    );
    // A stats interval implies metrics, and the report carries the dump.
    assert!(result.report.metrics.is_some());
}

#[test]
fn human_stats_format_emits_the_one_liner() {
    let trace = web_trace(60, 12);
    let buf = SharedBuf::default();
    Pipeline::compress()
        .input(Input::trace(&trace))
        .sink(Sink::bytes())
        .threads(2)
        .stats_interval(Duration::from_millis(5))
        .stats_format(SnapshotFormat::Human)
        .stats_writer(StatsSink::new(Box::new(buf.clone())))
        .run()
        .unwrap();
    let out = buf.contents();
    assert!(out.contains("pkt/s"), "{out}");
    assert!(out.contains("queues ["), "{out}");
}

#[test]
fn report_embeds_the_final_metrics_dump_and_stage_split() {
    let trace = web_trace(150, 13);
    let metrics = Metrics::enabled();
    let result = Pipeline::compress()
        .input(Input::trace(&trace))
        .sink(Sink::bytes())
        .threads(2)
        .metrics(metrics.clone())
        .run()
        .unwrap();
    let report = &result.report;
    let snap = report.metrics.as_ref().expect("metrics dump in report");
    assert_eq!(
        snap.counter(names::ENGINE_PACKETS),
        Some(trace.len() as u64)
    );
    assert_eq!(snap.queue_depths(), vec![0, 0], "drained queues");
    // The timing block carries the measured stage split.
    let timing = report.timing.unwrap();
    assert!(timing.stage_busy_secs > 0.0);
    assert!(timing.unattributed_secs >= 0.0);
    assert!(timing.unattributed_secs <= timing.elapsed_secs);
    // …and the JSON schema embeds both.
    let json = report.to_json();
    assert!(is_valid_json(&json), "{json}");
    assert!(json.contains("\"metrics\": {\"counters\":{"), "{json}");
    assert!(json.contains("\"stage_busy_secs\": "), "{json}");
    assert!(json.contains("\"unattributed_secs\": "), "{json}");
    assert!(
        json.contains(&format!("\"engine.packets\":{}", trace.len())),
        "{json}"
    );
}

#[test]
fn uninstrumented_runs_embed_no_metrics_and_no_stage_split() {
    let trace = web_trace(60, 14);
    let result = Pipeline::compress()
        .input(Input::trace(&trace))
        .sink(Sink::bytes())
        .threads(2)
        .run()
        .unwrap();
    assert!(result.report.metrics.is_none());
    let json = result.report.to_json();
    assert!(!json.contains("\"metrics\""), "{json}");
    assert!(!json.contains("\"stage_busy_secs\""), "{json}");
}

#[test]
fn batch_route_feeds_reader_metrics_too() {
    let trace = web_trace(80, 15);
    let dir = std::env::temp_dir().join(format!("flowzip-met-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path: PathBuf = dir.join("whole.tsh");
    std::fs::write(&path, tsh::to_bytes(&trace)).unwrap();
    let metrics = Metrics::enabled();
    let result = Pipeline::compress()
        .input(Input::file(&path))
        .sink(Sink::bytes())
        .metrics(metrics.clone())
        .run()
        .unwrap();
    let snap = result.report.metrics.as_ref().unwrap();
    assert_eq!(
        snap.counter(names::IO_READER_BYTES),
        Some(std::fs::metadata(&path).unwrap().len()),
        "reader byte counter covers the whole file"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stats_knobs_validate_up_front() {
    let trace = web_trace(10, 16);
    let err = Pipeline::compress()
        .input(Input::trace(&trace))
        .sink(Sink::bytes())
        .stats_interval(Duration::ZERO)
        .run()
        .unwrap_err();
    assert!(err.to_string().contains("stats_interval"), "{err}");
    let trace = web_trace(10, 16);
    let err = Pipeline::compress()
        .input(Input::trace(&trace))
        .sink(Sink::bytes())
        .stats_format(SnapshotFormat::Human)
        .run()
        .unwrap_err();
    assert!(err.to_string().contains("stats_interval"), "{err}");
}
