//! End-to-end flow-telemetry pins over the session API:
//!
//! * Loss episodes the traffic generators inject come back out of the
//!   archive as the retransmission classes the accumulator is supposed
//!   to detect — fast (triple dup-ACK) for the Web model, timeout for
//!   the P2P model.
//! * `--telemetry` is byte-identity-neutral: the rev 2.2 archive is the
//!   rev 2.1 archive plus a pure `FZT1` suffix, and a pre-2.2 reader
//!   decodes both to the same `CompressedTrace` (proptest over random
//!   traces, shard counts and loss rates).

use flowzip_core::{container, CompressedTrace};
use flowzip_pipeline::{Input, Pipeline, Sink};
use flowzip_trace::Trace;
use flowzip_traffic::p2p::{P2pTrafficConfig, P2pTrafficGenerator};
use flowzip_traffic::web::{WebTrafficConfig, WebTrafficGenerator};
use proptest::prelude::*;

fn web_trace(flows: usize, loss_prob: f64, seed: u64) -> Trace {
    WebTrafficGenerator::new(
        WebTrafficConfig {
            flows,
            duration_secs: 20.0,
            loss_prob,
            ..WebTrafficConfig::default()
        },
        seed,
    )
    .generate()
}

fn compress(trace: &Trace, telemetry: bool, threads: usize) -> (Vec<u8>, flowzip_pipeline::Report) {
    let result = Pipeline::compress()
        .input(Input::trace(trace))
        .sink(Sink::bytes())
        .threads(threads)
        .telemetry(telemetry)
        .run()
        .unwrap();
    let report = result.report.clone();
    (result.into_bytes().unwrap(), report)
}

#[test]
fn web_losses_surface_as_fast_retransmissions() {
    let trace = web_trace(200, 0.4, 91);
    let (_, report) = compress(&trace, true, 2);
    let t = report.archive.unwrap().telemetry.expect("telemetry on");
    assert_eq!(t.flows, 200);
    assert!(
        t.retrans_fast >= 40,
        "≈40% of 200 flows lost a segment, got {} fast retransmits",
        t.retrans_fast
    );
    // The dup-ACK train precedes every injected resend, so none of them
    // may fall back to the timeout class.
    assert_eq!(t.retrans_timeout, 0, "web loss model recovers via dup-ACKs");
    // Handshake RTTs were scripted lognormal around 80 ms.
    assert!(t.rtt_flows == 200, "every web flow handshakes");
    assert!(
        (20_000..=400_000).contains(&t.mean_rtt_us),
        "mean rtt {} µs",
        t.mean_rtt_us
    );
    assert!(t.p95_rtt_us >= t.mean_rtt_us);
}

#[test]
fn p2p_losses_surface_as_timeout_retransmissions() {
    let trace = P2pTrafficGenerator::new(
        P2pTrafficConfig {
            flows: 40,
            duration_secs: 20.0,
            loss_prob: 0.3,
            ..P2pTrafficConfig::default()
        },
        92,
    )
    .generate();
    let (_, report) = compress(&trace, true, 2);
    let t = report.archive.unwrap().telemetry.expect("telemetry on");
    assert_eq!(t.flows, 40);
    assert!(
        t.retrans_timeout >= 20,
        "~30% of every burst times out, got {}",
        t.retrans_timeout
    );
    // P2P has no pure-ACK stream, so nothing can look like a triple
    // dup-ACK recovery.
    assert_eq!(t.retrans_fast, 0);
}

#[test]
fn loss_free_traces_report_zero_retransmissions() {
    let trace = web_trace(80, 0.0, 93);
    let (_, report) = compress(&trace, true, 1);
    let t = report.archive.unwrap().telemetry.expect("telemetry on");
    assert_eq!((t.retrans_fast, t.retrans_timeout), (0, 0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole neutrality pin: for random traces (with and without
    /// loss episodes) and shard counts, the telemetry archive is the
    /// plain archive plus a pure suffix — stripping `FZT1` restores the
    /// rev 2.1 bytes exactly, and both decode identically.
    #[test]
    fn telemetry_is_a_pure_archive_suffix(
        flows in 10usize..50,
        seed in 0u64..300,
        shards in 1usize..4,
        lossy in any::<bool>(),
    ) {
        let trace = web_trace(flows, if lossy { 0.3 } else { 0.0 }, seed);
        let (off, _) = compress(&trace, false, shards);
        let (on, _) = compress(&trace, true, shards);
        prop_assert!(on.len() > off.len());
        prop_assert_eq!(&on[..off.len()], &off[..], "FZT1 must be a pure suffix");
        // A pre-2.2 reader sees one and the same archive.
        let decoded_on = CompressedTrace::from_bytes(&on).unwrap();
        let decoded_off = CompressedTrace::from_bytes(&off).unwrap();
        prop_assert_eq!(decoded_on, decoded_off);
        // The suffix itself is well-formed and row-complete.
        let telemetry = container::v2_telemetry(&on).unwrap().expect("FZT1 present");
        prop_assert_eq!(telemetry.flow_count(), flows as u64);
        prop_assert!(container::v2_telemetry(&off).unwrap().is_none());
    }
}
