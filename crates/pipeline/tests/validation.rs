//! Configuration validation: every nonsense session errors **up front**
//! with a descriptive message — never a panic, a hang, or a silent empty
//! run.

use flowzip_pipeline::{Input, Pipeline, PipelineError, Sink};
use flowzip_trace::prelude::*;
use flowzip_trace::tsh;
use std::path::PathBuf;

fn tiny_trace() -> Trace {
    let mut t = Trace::new();
    t.push(
        PacketRecord::builder()
            .src(Ipv4Addr::new(10, 0, 0, 1), 4000)
            .dst(Ipv4Addr::new(192, 0, 2, 9), 80)
            .timestamp(Timestamp::from_micros(5))
            .flags(TcpFlags::SYN)
            .build(),
    );
    t
}

/// Runs a compress session and expects a `Config` error containing
/// `needle`.
fn expect_config_err(builder: flowzip_pipeline::CompressBuilder<'_>, needle: &str) {
    match builder.run() {
        Err(PipelineError::Config(msg)) => {
            assert!(msg.contains(needle), "message `{msg}` misses `{needle}`");
        }
        Err(other) => panic!("expected Config error containing `{needle}`, got {other}"),
        Ok(_) => panic!("expected Config error containing `{needle}`, got success"),
    }
}

#[test]
fn zero_threads_is_rejected() {
    let t = tiny_trace();
    expect_config_err(
        Pipeline::compress()
            .input(Input::trace(&t))
            .sink(Sink::bytes())
            .threads(0),
        "threads must be ≥ 1",
    );
}

#[test]
fn zero_batch_size_is_rejected() {
    let t = tiny_trace();
    expect_config_err(
        Pipeline::compress()
            .input(Input::trace(&t))
            .sink(Sink::bytes())
            .batch_size(0),
        "batch_size must be ≥ 1",
    );
}

#[test]
fn zero_channel_capacity_is_rejected() {
    let t = tiny_trace();
    expect_config_err(
        Pipeline::compress()
            .input(Input::trace(&t))
            .sink(Sink::bytes())
            .channel_capacity(0),
        "channel_capacity must be ≥ 1",
    );
}

#[test]
fn zero_readers_is_rejected() {
    let t = tiny_trace();
    expect_config_err(
        Pipeline::compress()
            .input(Input::trace(&t))
            .sink(Sink::bytes())
            .readers(0),
        "readers must be ≥ 1",
    );
}

#[test]
fn zero_prefetch_mb_is_rejected() {
    let t = tiny_trace();
    expect_config_err(
        Pipeline::compress()
            .input(Input::trace(&t))
            .sink(Sink::bytes())
            .prefetch_mb(0),
        "prefetch_mb must be ≥ 1",
    );
}

#[test]
fn empty_file_list_is_rejected() {
    expect_config_err(
        Pipeline::compress()
            .input(Input::files(Vec::<PathBuf>::new()))
            .sink(Sink::bytes()),
        "input set is empty",
    );
}

#[test]
fn missing_input_and_sink_are_rejected() {
    expect_config_err(Pipeline::compress().sink(Sink::bytes()), "no input");
    let t = tiny_trace();
    expect_config_err(Pipeline::compress().input(Input::trace(&t)), "no sink");
}

#[test]
fn glob_matching_nothing_is_an_error_not_an_empty_run() {
    let dir = std::env::temp_dir().join(format!("flowzip-val-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let pattern = dir.join("nope-*.tsh");
    expect_config_err(
        Pipeline::compress()
            .input(Input::glob(pattern.to_str().unwrap()))
            .sink(Sink::bytes()),
        "matched no files",
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn multi_file_batch_conflict_is_rejected() {
    let dir = std::env::temp_dir().join(format!("flowzip-val-mf-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let a = dir.join("a.tsh");
    let b = dir.join("b.tsh");
    std::fs::write(&a, tsh::to_bytes(&tiny_trace())).unwrap();
    std::fs::write(&b, tsh::to_bytes(&tiny_trace())).unwrap();
    expect_config_err(
        Pipeline::compress()
            .input(Input::files([&a, &b]))
            .sink(Sink::bytes())
            .streaming(false),
        "always stream",
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn engine_knobs_with_batch_route_are_rejected() {
    let t = tiny_trace();
    expect_config_err(
        Pipeline::compress()
            .input(Input::trace(&t))
            .sink(Sink::bytes())
            .streaming(false)
            .threads(4),
        "streaming engine",
    );
}

#[test]
fn file_ingest_knobs_on_non_file_inputs_are_rejected() {
    // readers/prefetch_mb would be silently ignored for in-memory and
    // pre-opened inputs — that is a misconfiguration, not a no-op.
    let t = tiny_trace();
    expect_config_err(
        Pipeline::compress()
            .input(Input::trace(&t))
            .sink(Sink::bytes())
            .readers(4),
        "no effect",
    );
    expect_config_err(
        Pipeline::compress()
            .input(Input::packets(t.iter().cloned()))
            .sink(Sink::bytes())
            .prefetch_mb(8),
        "no effect",
    );
}

#[test]
fn archive_bytes_into_compress_is_rejected() {
    expect_config_err(
        Pipeline::compress()
            .input(Input::bytes(vec![1, 2, 3]))
            .sink(Sink::bytes()),
        "compress wants packets",
    );
}

#[test]
fn decompress_rejects_packet_shaped_inputs() {
    let t = tiny_trace();
    let err = Pipeline::decompress()
        .input(Input::trace(&t))
        .sink(Sink::bytes())
        .run()
        .unwrap_err();
    assert!(
        matches!(&err, PipelineError::Config(m) if m.contains("serialized archive")),
        "{err}"
    );

    let err = Pipeline::decompress()
        .input(Input::files(["a.fzc", "b.fzc"]))
        .sink(Sink::bytes())
        .run()
        .unwrap_err();
    assert!(
        matches!(&err, PipelineError::Config(m) if m.contains("exactly one archive")),
        "{err}"
    );
}

#[test]
fn decompress_surfaces_decode_errors_with_context() {
    let err = Pipeline::decompress()
        .input(Input::bytes(b"not an archive".to_vec()))
        .sink(Sink::bytes())
        .run()
        .unwrap_err();
    assert!(matches!(err, PipelineError::Decode { .. }), "{err}");
    assert!(err.to_string().contains("decompress"), "{err}");
}

#[test]
fn missing_input_file_surfaces_read_error_with_context() {
    let err = Pipeline::compress()
        .input(Input::file("/nonexistent/missing.tsh"))
        .sink(Sink::bytes())
        .run()
        .unwrap_err();
    assert!(matches!(err, PipelineError::Read { .. }), "{err}");
    assert!(err.to_string().contains("missing.tsh"), "{err}");
}
