//! The tentpole acceptance pins: for every input/sink combination the
//! `Pipeline` session API produces archive bytes **identical** to the
//! legacy entry point it subsumes —
//!
//! | session | legacy entry point |
//! |---|---|
//! | `Input::trace`, no tuning | `Compressor::compress` (batch) |
//! | `Input::trace` + `threads` | `StreamingEngine::compress_trace_to_bytes` |
//! | `Input::packets` | `StreamingEngine::compress_packets` |
//! | `Input::file` | `StreamingEngine::compress_source_to_bytes(FileSource)` |
//! | `Input::file` + `prefetch_mb` | … with `FileSource::open_prefetched` |
//! | `Input::files`/`Input::glob` + `readers` | … with `MultiFileSource` |
//! | `Pipeline::decompress` | `Decompressor::decompress` + `tsh/pcap::to_bytes` |
//!
//! each × container v1 and v2. The sink never changes the bytes:
//! `Sink::file`, `Sink::bytes` and `Sink::writer` deliver one identical
//! serialization.

// The right-hand side of every pin *is* the deprecated legacy API.
#![allow(deprecated)]

use flowzip_core::{ArchiveFormat, Compressor, DecompressParams, Decompressor, Params};
use flowzip_engine::StreamingEngine;
use flowzip_io::{FileSource, MultiFileConfig, MultiFileSource, PrefetchConfig};
use flowzip_pipeline::{Input, Pipeline, Sink};
use flowzip_trace::reader::CaptureFormat;
use flowzip_trace::{pcap, tsh, Trace};
use flowzip_traffic::web::{WebTrafficConfig, WebTrafficGenerator};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn web_trace(flows: usize, seed: u64) -> Trace {
    WebTrafficGenerator::new(
        WebTrafficConfig {
            flows,
            duration_secs: 20.0,
            ..WebTrafficConfig::default()
        },
        seed,
    )
    .generate()
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flowzip-pl-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Splits a TSH image into `n` chunk files on record boundaries.
fn write_chunks(dir: &Path, image: &[u8], n: usize) -> Vec<PathBuf> {
    tsh::split_record_chunks(image, n)
        .into_iter()
        .enumerate()
        .map(|(i, chunk)| {
            let path = dir.join(format!("chunk-{i:02}.tsh"));
            std::fs::write(&path, chunk).unwrap();
            path
        })
        .collect()
}

const FORMATS: [ArchiveFormat; 2] = [ArchiveFormat::V1, ArchiveFormat::V2];

#[test]
fn batch_session_matches_compressor() {
    let trace = web_trace(120, 41);
    let (archive, _) = Compressor::new(Params::paper()).compress(&trace);
    for format in FORMATS {
        let want = match format {
            ArchiveFormat::V1 => archive.to_bytes(),
            ArchiveFormat::V2 => archive.to_bytes_v2(),
        };
        let result = Pipeline::compress()
            .input(Input::trace(&trace))
            .sink(Sink::bytes())
            .format(format)
            .run()
            .unwrap();
        // No tuning + in-memory trace → the batch route.
        assert!(result.report.engine.is_none(), "batch run has no engine");
        assert_eq!(result.into_bytes().unwrap(), want, "{format}");
    }
}

#[test]
fn streaming_session_matches_engine_trace_entry_point() {
    let trace = web_trace(150, 42);
    for format in FORMATS {
        for shards in [1usize, 2, 5] {
            let engine = StreamingEngine::builder()
                .shards(shards)
                .batch_size(128)
                .format(format)
                .build();
            let (want, _) = engine.compress_trace_to_bytes(&trace).unwrap();
            let result = Pipeline::compress()
                .input(Input::trace(&trace))
                .sink(Sink::bytes())
                .format(format)
                .threads(shards)
                .batch_size(128)
                .run()
                .unwrap();
            assert!(result.report.engine.is_some(), "threads → streaming");
            assert_eq!(
                result.into_bytes().unwrap(),
                want,
                "{format}, {shards} shards"
            );
        }
    }
}

#[test]
fn packets_session_matches_engine_packets_entry_point() {
    let trace = web_trace(90, 43);
    let packets: Vec<_> = trace.iter().cloned().collect();
    for format in FORMATS {
        let engine = StreamingEngine::builder()
            .shards(2)
            .batch_size(64)
            .format(format)
            .build();
        let (_, report) = engine.compress_packets(packets.clone()).unwrap();
        let (want, _) = engine
            .compress_stream_to_bytes(packets.iter().cloned().map(Ok))
            .unwrap();
        let result = Pipeline::compress()
            .input(Input::packets(packets.iter().cloned()))
            .sink(Sink::bytes())
            .format(format)
            .threads(2)
            .batch_size(64)
            .run()
            .unwrap();
        assert_eq!(
            result.report.compression.as_ref().unwrap().flows,
            report.report.flows
        );
        assert_eq!(result.into_bytes().unwrap(), want, "{format}");
    }
}

#[test]
fn file_session_matches_engine_file_source_entry_point() {
    let dir = tmpdir("file");
    let trace = web_trace(140, 44);
    let path = dir.join("whole.tsh");
    std::fs::write(&path, tsh::to_bytes(&trace)).unwrap();
    for format in FORMATS {
        let engine = StreamingEngine::builder()
            .shards(2)
            .batch_size(1024)
            .format(format)
            .build();
        let (want, _) = engine
            .compress_source_to_bytes(FileSource::open(&path).unwrap())
            .unwrap();
        let result = Pipeline::compress()
            .input(Input::file(&path))
            .sink(Sink::bytes())
            .format(format)
            .threads(2)
            .run()
            .unwrap();
        assert_eq!(result.into_bytes().unwrap(), want, "{format}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn prefetched_session_matches_engine_prefetch_entry_point() {
    let dir = tmpdir("prefetch");
    let trace = web_trace(160, 45);
    let path = dir.join("whole.tsh");
    std::fs::write(&path, tsh::to_bytes(&trace)).unwrap();
    for format in FORMATS {
        let engine = StreamingEngine::builder()
            .shards(2)
            .batch_size(1024)
            .format(format)
            .build();
        let (want, _) = engine
            .compress_source_to_bytes(
                FileSource::open_prefetched(&path, PrefetchConfig::with_chunk_mb(1)).unwrap(),
            )
            .unwrap();
        let result = Pipeline::compress()
            .input(Input::file(&path))
            .sink(Sink::bytes())
            .format(format)
            .threads(2)
            .prefetch_mb(1)
            .run()
            .unwrap();
        assert_eq!(result.into_bytes().unwrap(), want, "{format}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn multi_file_session_matches_engine_multi_file_entry_point() {
    let dir = tmpdir("multi");
    let trace = web_trace(180, 46);
    let chunks = write_chunks(&dir, &tsh::to_bytes(&trace), 3);
    for format in FORMATS {
        for readers in [1usize, 3] {
            let engine = StreamingEngine::builder()
                .shards(2)
                .batch_size(1024)
                .format(format)
                .build();
            let source = MultiFileSource::open(
                &chunks,
                MultiFileConfig {
                    readers,
                    batch_packets: 1024,
                    queue_batches: 4,
                    prefetch: None,
                },
            )
            .unwrap();
            let (want, _) = engine.compress_source_to_bytes(source).unwrap();
            let result = Pipeline::compress()
                .input(Input::files(&chunks))
                .sink(Sink::bytes())
                .format(format)
                .threads(2)
                .readers(readers)
                .run()
                .unwrap();
            assert_eq!(
                result.into_bytes().unwrap(),
                want,
                "{format}, {readers} readers"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn glob_and_source_inputs_match_the_explicit_list() {
    let dir = tmpdir("glob");
    let trace = web_trace(130, 47);
    let chunks = write_chunks(&dir, &tsh::to_bytes(&trace), 3);
    let run = |input: Input<'_>, readers: Option<usize>| {
        let mut session = Pipeline::compress()
            .input(input)
            .sink(Sink::bytes())
            .threads(2);
        if let Some(r) = readers {
            session = session.readers(r);
        }
        session.run().unwrap().into_bytes().unwrap()
    };
    let want = run(Input::files(&chunks), Some(2));
    let pattern = dir.join("chunk-*.tsh");
    assert_eq!(
        run(Input::glob(pattern.to_str().unwrap()), Some(2)),
        want,
        "glob"
    );
    // A pre-opened source carries its own reader config; the session's
    // `readers` knob would be rejected (see the validation suite).
    let source = MultiFileSource::open(&chunks, MultiFileConfig::with_readers(2)).unwrap();
    assert_eq!(run(Input::source(source), None), want, "source");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_sink_delivers_the_identical_bytes() {
    let dir = tmpdir("sinks");
    let trace = web_trace(80, 48);
    let want = Pipeline::compress()
        .input(Input::trace(&trace))
        .sink(Sink::bytes())
        .run()
        .unwrap()
        .into_bytes()
        .unwrap();

    let path = dir.join("out.fzc");
    let file_result = Pipeline::compress()
        .input(Input::trace(&trace))
        .sink(Sink::file(&path))
        .run()
        .unwrap();
    assert!(file_result.bytes().is_none(), "file sink keeps no buffer");
    assert_eq!(std::fs::read(&path).unwrap(), want);
    assert_eq!(file_result.report.output, Some(path.display().to_string()));

    let mut buf = Vec::new();
    Pipeline::compress()
        .input(Input::trace(&trace))
        .sink(Sink::writer(&mut buf))
        .run()
        .unwrap();
    assert_eq!(buf, want);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn decompress_session_matches_decompressor() {
    let trace = web_trace(100, 49);
    let (archive, _) = Compressor::new(Params::paper()).compress(&trace);
    let archive_bytes = archive.to_bytes_v2();
    // The legacy CLI decompressed what it read from disk, so the pin is
    // against the round-tripped archive (serialization quantizes RTTs).
    let archive = flowzip_core::CompressedTrace::from_bytes(&archive_bytes).unwrap();
    for seed in [1u64, 0x5EED] {
        let legacy = Decompressor::new(DecompressParams {
            seed,
            ..DecompressParams::default()
        })
        .decompress(&archive);

        let result = Pipeline::decompress()
            .input(Input::bytes(archive_bytes.clone()))
            .sink(Sink::bytes())
            .seed(seed)
            .run()
            .unwrap();
        assert_eq!(result.report.packets as usize, legacy.len());
        assert_eq!(result.report.flows as usize, archive.flow_count());
        assert_eq!(result.into_bytes().unwrap(), tsh::to_bytes(&legacy), "tsh");

        let as_pcap = Pipeline::decompress()
            .input(Input::bytes(archive_bytes.clone()))
            .sink(Sink::bytes())
            .seed(seed)
            .output_format(CaptureFormat::Pcap)
            .run()
            .unwrap();
        assert_eq!(
            as_pcap.into_bytes().unwrap(),
            pcap::to_bytes(&legacy),
            "pcap"
        );
    }
}

proptest! {
    /// Random traces, shard counts and formats: the session API and the
    /// legacy entry points serialize byte-identically, batch and
    /// streaming.
    #[test]
    fn session_matches_legacy_for_random_configs(
        flows in 10usize..60,
        seed in 0u64..500,
        shards in 1usize..5,
        v1 in any::<bool>(),
    ) {
        let format = if v1 { ArchiveFormat::V1 } else { ArchiveFormat::V2 };
        let trace = web_trace(flows, seed);

        let (archive, _) = Compressor::new(Params::paper()).compress(&trace);
        let want_batch = match format {
            ArchiveFormat::V1 => archive.to_bytes(),
            ArchiveFormat::V2 => archive.to_bytes_v2(),
        };
        let got_batch = Pipeline::compress()
            .input(Input::trace(&trace))
            .sink(Sink::bytes())
            .format(format)
            .run()
            .unwrap()
            .into_bytes()
            .unwrap();
        prop_assert_eq!(got_batch, want_batch);

        let engine = StreamingEngine::builder()
            .shards(shards)
            .batch_size(128)
            .format(format)
            .build();
        let (want_stream, _) = engine.compress_trace_to_bytes(&trace).unwrap();
        let got_stream = Pipeline::compress()
            .input(Input::trace(&trace))
            .sink(Sink::bytes())
            .format(format)
            .threads(shards)
            .batch_size(128)
            .run()
            .unwrap()
            .into_bytes()
            .unwrap();
        prop_assert_eq!(got_stream, want_stream);
    }
}
