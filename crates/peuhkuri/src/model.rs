//! Analytic model for the Peuhkuri method: §5 quotes its compression
//! ratio as "bounded by 16%" of the original 40-byte-header trace.

/// Bytes of an uncompressed TCP/IP header.
pub const FULL_HEADER_BYTES: f64 = 40.0;
/// Per-flow table entry: the 5-tuple stored once (4+4+2+2+1 bytes).
pub const PER_FLOW_BYTES: f64 = 13.0;
/// The paper's quoted per-packet bound: 16% of 40 bytes.
pub const PER_PACKET_BYTES: f64 = 6.4;

/// The ratio bound the paper quotes for the method.
pub const BOUND: f64 = 0.16;

/// Expected ratio for a flow of `n` packets: per-flow overhead amortized
/// over `n` packets of `PER_PACKET_BYTES` each.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ratio_for_flow_len(n: u64) -> f64 {
    assert!(n > 0, "flows have at least one packet");
    (PER_FLOW_BYTES + PER_PACKET_BYTES * n as f64) / (FULL_HEADER_BYTES * n as f64)
}

/// Overall ratio under a flow-length pmf (`pmf[n]` = probability of an
/// n-packet flow, index 0 ignored); byte-weighted like the VJ model.
pub fn expected_ratio(pmf: &[f64]) -> f64 {
    let mut compressed = 0.0;
    let mut original = 0.0;
    for (n, &p) in pmf.iter().enumerate().skip(1) {
        if p > 0.0 {
            compressed += p * (PER_FLOW_BYTES + PER_PACKET_BYTES * n as f64);
            original += p * FULL_HEADER_BYTES * n as f64;
        }
    }
    if original == 0.0 {
        0.0
    } else {
        compressed / original
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_flows_approach_the_bound() {
        let r = ratio_for_flow_len(10_000);
        assert!((r - BOUND).abs() < 0.001);
    }

    #[test]
    fn short_flows_pay_table_overhead() {
        assert!(ratio_for_flow_len(1) > BOUND);
        assert!(ratio_for_flow_len(2) > ratio_for_flow_len(10));
    }

    #[test]
    fn expected_ratio_matches_hand_computation() {
        let mut pmf = vec![0.0; 6];
        pmf[5] = 1.0;
        let expect = (13.0 + 6.4 * 5.0) / 200.0;
        assert!((expected_ratio(&pmf) - expect).abs() < 1e-12);
    }

    #[test]
    fn empty_pmf_is_zero() {
        assert_eq!(expected_ratio(&[]), 0.0);
    }

    #[test]
    fn web_mix_is_near_bound() {
        let mut pmf = vec![0.0; 101];
        pmf[4] = 0.4;
        pmf[8] = 0.3;
        pmf[20] = 0.2;
        pmf[100] = 0.1;
        let r = expected_ratio(&pmf);
        assert!((0.14..=0.22).contains(&r), "got {r}");
    }
}
