//! Peuhkuri-style lossy flow-based packet trace reduction.
//!
//! Reference \[5\] of the paper (M. Peuhkuri, *A method to compress and
//! anonymize packet traces*, IMW 2001) stores per-flow constants once and
//! keeps only a small per-packet record, trading exact header recovery for
//! storage: the paper quotes its compression ratio as **bounded by 16%**
//! of the original header trace.
//!
//! This implementation follows that architecture:
//!
//! * a **flow table** holds each distinct directional 5-tuple once
//!   (13 bytes);
//! * each **packet record** is `varint flow-id + varint µs time delta +
//!   varint payload length + flag byte` — about 6 bytes in practice, i.e.
//!   ~16% of the 40-byte header;
//! * sequence/ack numbers, windows, IP ids and TTLs are *not* stored
//!   (that is where the loss lives); decompression re-synthesizes
//!   plausible values (cumulative sequence numbers, fixed window).
//!
//! # Example
//!
//! ```
//! use flowzip_trace::prelude::*;
//! use flowzip_peuhkuri::{PeuhkuriCompressor, decompress};
//!
//! let t = FiveTuple::tcp(Ipv4Addr::new(10,0,0,1), 4000, Ipv4Addr::new(10,0,0,2), 80);
//! let mut trace = Trace::new();
//! for i in 0..50u64 {
//!     trace.push(PacketRecord::builder()
//!         .timestamp(Timestamp::from_micros(i * 100))
//!         .tuple(t).payload_len(1000).flags(TcpFlags::ACK).build());
//! }
//! let bytes = PeuhkuriCompressor::new().compress_trace(&trace);
//! let back = decompress(&bytes).unwrap();
//! assert_eq!(back.len(), trace.len());
//! // Lossy, but flow identity, timing, sizes and flags survive:
//! assert_eq!(back.packets()[7].tuple(), trace.packets()[7].tuple());
//! assert_eq!(back.packets()[7].timestamp(), trace.packets()[7].timestamp());
//! ```

pub mod model;

use flowzip_trace::prelude::*;
use std::collections::HashMap;
use std::fmt;

/// Magic prefix of the container ("PK" for Peuhkuri + version 1).
pub const MAGIC: [u8; 4] = *b"PKT1";

/// Errors from decoding a Peuhkuri stream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PeuhkuriError {
    /// Missing or wrong magic.
    BadMagic,
    /// Stream ended inside a structure.
    Truncated,
    /// A packet referenced a flow id past the flow table.
    UnknownFlow(u64),
}

impl fmt::Display for PeuhkuriError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeuhkuriError::BadMagic => write!(f, "bad peuhkuri container magic"),
            PeuhkuriError::Truncated => write!(f, "peuhkuri stream truncated"),
            PeuhkuriError::UnknownFlow(id) => write!(f, "unknown flow id {id}"),
        }
    }
}

impl std::error::Error for PeuhkuriError {}

/// Streaming compressor: collects the flow table and packet records, then
/// [`PeuhkuriCompressor::finish`] (or `compress_trace`) emits the container.
#[derive(Debug, Default)]
pub struct PeuhkuriCompressor {
    flows: HashMap<FiveTuple, u64>,
    flow_order: Vec<FiveTuple>,
    records: Vec<u8>,
    last_ts: Timestamp,
    packets: u64,
}

impl PeuhkuriCompressor {
    /// Creates an empty compressor.
    pub fn new() -> PeuhkuriCompressor {
        PeuhkuriCompressor::default()
    }

    /// Adds one packet (packets must arrive in timestamp order; time
    /// deltas are stream-relative).
    pub fn push(&mut self, p: &PacketRecord) {
        let next_id = self.flows.len() as u64;
        let id = *self.flows.entry(p.tuple()).or_insert_with(|| {
            self.flow_order.push(p.tuple());
            next_id
        });
        let delta = p.timestamp().saturating_since(self.last_ts).as_micros();
        self.last_ts = p.timestamp();
        write_uvarint(id, &mut self.records);
        write_uvarint(delta, &mut self.records);
        write_uvarint(p.payload_len() as u64, &mut self.records);
        self.records.push(p.flags().bits());
        self.packets += 1;
    }

    /// Packets pushed so far.
    pub fn packet_count(&self) -> u64 {
        self.packets
    }

    /// Distinct flows seen so far.
    pub fn flow_count(&self) -> usize {
        self.flow_order.len()
    }

    /// Serializes the container: magic, flow table, packet records.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.flow_order.len() * 13 + self.records.len());
        out.extend_from_slice(&MAGIC);
        write_uvarint(self.flow_order.len() as u64, &mut out);
        write_uvarint(self.packets, &mut out);
        for t in &self.flow_order {
            out.extend_from_slice(&t.src_ip.octets());
            out.extend_from_slice(&t.dst_ip.octets());
            out.extend_from_slice(&t.src_port.to_be_bytes());
            out.extend_from_slice(&t.dst_port.to_be_bytes());
            out.push(t.protocol.number());
        }
        out.extend_from_slice(&self.records);
        out
    }

    /// Convenience: compresses a whole trace in one call.
    pub fn compress_trace(mut self, trace: &Trace) -> Vec<u8> {
        for p in trace {
            self.push(p);
        }
        self.finish()
    }
}

/// Decompresses a Peuhkuri container into a trace.
///
/// Timing, flow identity, payload sizes and flags are exact; sequence
/// numbers are re-synthesized cumulatively per flow (starting at a fixed
/// base), acks/windows/ids take fixed defaults — the documented loss.
///
/// # Errors
///
/// Returns [`PeuhkuriError`] on malformed input.
pub fn decompress(data: &[u8]) -> Result<Trace, PeuhkuriError> {
    if data.len() < 4 || data[0..4] != MAGIC {
        return Err(PeuhkuriError::BadMagic);
    }
    let mut pos = 4usize;
    let flow_count = read_uvarint(data, &mut pos)?;
    let packet_count = read_uvarint(data, &mut pos)?;
    let mut flows = Vec::with_capacity(flow_count as usize);
    for _ in 0..flow_count {
        if pos + 13 > data.len() {
            return Err(PeuhkuriError::Truncated);
        }
        let b = &data[pos..pos + 13];
        flows.push(FiveTuple::new(
            Ipv4Addr::new(b[0], b[1], b[2], b[3]),
            u16::from_be_bytes([b[8], b[9]]),
            Ipv4Addr::new(b[4], b[5], b[6], b[7]),
            u16::from_be_bytes([b[10], b[11]]),
            Protocol::new(b[12]),
        ));
        pos += 13;
    }
    let mut next_seq: Vec<u32> = vec![1_000; flows.len()];
    let mut trace = Trace::with_capacity(packet_count as usize);
    let mut now = Timestamp::ZERO;
    for _ in 0..packet_count {
        let id = read_uvarint(data, &mut pos)?;
        let delta = read_uvarint(data, &mut pos)?;
        let len = read_uvarint(data, &mut pos)? as u16;
        let flags = *data.get(pos).ok_or(PeuhkuriError::Truncated)?;
        pos += 1;
        let tuple = *flows
            .get(id as usize)
            .ok_or(PeuhkuriError::UnknownFlow(id))?;
        now += Duration::from_micros(delta);
        let seq = next_seq[id as usize];
        next_seq[id as usize] = seq.wrapping_add(len as u32);
        trace.push(
            PacketRecord::builder()
                .timestamp(now)
                .tuple(tuple)
                .flags(TcpFlags::from_bits(flags))
                .payload_len(len)
                .seq(seq)
                .build(),
        );
    }
    Ok(trace)
}

fn write_uvarint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn read_uvarint(data: &[u8], pos: &mut usize) -> Result<u64, PeuhkuriError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *data.get(*pos).ok_or(PeuhkuriError::Truncated)?;
        *pos += 1;
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(PeuhkuriError::Truncated);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(port: u16) -> FiveTuple {
        FiveTuple::tcp(
            Ipv4Addr::new(10, 1, 1, 1),
            port,
            Ipv4Addr::new(172, 16, 0, 9),
            80,
        )
    }

    fn web_like_trace(flows: u16, pkts_per_flow: u64) -> Trace {
        let mut trace = Trace::new();
        let mut ts = 0u64;
        for f in 0..flows {
            for i in 0..pkts_per_flow {
                ts += 37;
                trace.push(
                    PacketRecord::builder()
                        .timestamp(Timestamp::from_micros(ts))
                        .tuple(tuple(4000 + f))
                        .payload_len(if i % 3 == 0 { 0 } else { 1460 })
                        .flags(if i == 0 { TcpFlags::SYN } else { TcpFlags::ACK })
                        .seq(i as u32 * 1460)
                        .build(),
                );
            }
        }
        trace
    }

    #[test]
    fn lossless_fields_roundtrip() {
        let trace = web_like_trace(5, 20);
        let bytes = PeuhkuriCompressor::new().compress_trace(&trace);
        let back = decompress(&bytes).unwrap();
        assert_eq!(back.len(), trace.len());
        for (a, b) in trace.iter().zip(back.iter()) {
            assert_eq!(a.tuple(), b.tuple());
            assert_eq!(a.timestamp(), b.timestamp());
            assert_eq!(a.payload_len(), b.payload_len());
            assert_eq!(a.flags(), b.flags());
        }
    }

    #[test]
    fn sequence_numbers_are_synthesized_cumulatively() {
        let trace = web_like_trace(1, 5);
        let back = decompress(&PeuhkuriCompressor::new().compress_trace(&trace)).unwrap();
        let mut expect = 1_000u32;
        for p in &back {
            assert_eq!(p.seq(), expect);
            expect = expect.wrapping_add(p.payload_len() as u32);
        }
    }

    #[test]
    fn ratio_is_near_the_sixteen_percent_bound() {
        // Realistic mix: enough packets per flow to amortize the table.
        let trace = web_like_trace(50, 40);
        let bytes = PeuhkuriCompressor::new().compress_trace(&trace);
        let ratio = bytes.len() as f64 / flowzip_trace::tsh::file_size(&trace) as f64;
        assert!(
            (0.08..=0.20).contains(&ratio),
            "expected ratio near 16%, got {:.3}",
            ratio
        );
    }

    #[test]
    fn empty_trace_roundtrip() {
        let bytes = PeuhkuriCompressor::new().compress_trace(&Trace::new());
        let back = decompress(&bytes).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decompress(b"nope"), Err(PeuhkuriError::BadMagic));
        assert_eq!(decompress(b""), Err(PeuhkuriError::BadMagic));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let trace = web_like_trace(2, 3);
        let bytes = PeuhkuriCompressor::new().compress_trace(&trace);
        for cut in 4..bytes.len() {
            assert!(decompress(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn counts_are_tracked() {
        let mut c = PeuhkuriCompressor::new();
        let trace = web_like_trace(3, 4);
        for p in &trace {
            c.push(p);
        }
        assert_eq!(c.packet_count(), 12);
        assert_eq!(c.flow_count(), 3);
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_uvarint(v, &mut buf);
            let mut pos = 0;
            assert_eq!(read_uvarint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }
}
