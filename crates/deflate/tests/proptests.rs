//! Property tests: DEFLATE and gzip must round-trip arbitrary inputs at
//! every level, and LZ77 token streams must always replay exactly.

use flowzip_deflate::lz77::{expand, tokenize, Effort};
use flowzip_deflate::{deflate_compress, gzip_compress, gzip_decompress, inflate, Level};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn deflate_roundtrip_random(data in prop::collection::vec(any::<u8>(), 0..20_000)) {
        for level in [Level::Fast, Level::Default, Level::Best] {
            let z = deflate_compress(&data, level);
            prop_assert_eq!(&inflate(&z).unwrap(), &data);
        }
    }

    #[test]
    fn deflate_roundtrip_structured(
        seed in any::<u8>(),
        reps in 1usize..400,
        chunk in prop::collection::vec(any::<u8>(), 1..64))
    {
        // Highly repetitive input: chunk repeated many times with a tweak.
        let mut data = Vec::with_capacity(reps * chunk.len());
        for i in 0..reps {
            data.extend_from_slice(&chunk);
            data.push(seed.wrapping_add(i as u8));
        }
        let z = deflate_compress(&data, Level::Default);
        prop_assert_eq!(&inflate(&z).unwrap(), &data);
        // Repetition must actually compress once past tiny sizes.
        if data.len() > 2_000 {
            prop_assert!(z.len() < data.len());
        }
    }

    #[test]
    fn gzip_roundtrip(data in prop::collection::vec(any::<u8>(), 0..10_000)) {
        let z = gzip_compress(&data, Level::Default);
        prop_assert_eq!(&gzip_decompress(&z).unwrap(), &data);
    }

    #[test]
    fn gzip_detects_single_byte_corruption(
        data in prop::collection::vec(any::<u8>(), 32..2_000),
        flip in any::<u16>())
    {
        let z = gzip_compress(&data, Level::Default);
        let pos = 10 + (flip as usize % (z.len() - 18)); // inside the body
        let mut bad = z.clone();
        bad[pos] ^= 0x01;
        // Either inflate fails or the CRC/length trailer catches it; a
        // silent wrong answer is the only unacceptable outcome.
        if let Ok(out) = gzip_decompress(&bad) {
            prop_assert_eq!(out, data);
        }
    }

    #[test]
    fn lz77_roundtrip(data in prop::collection::vec(any::<u8>(), 0..30_000)) {
        for effort in [Effort::FAST, Effort::DEFAULT, Effort::BEST] {
            let tokens = tokenize(&data, effort);
            prop_assert_eq!(&expand(&tokens), &data);
        }
    }

    #[test]
    fn crc32_is_linear_in_concatenation(a in prop::collection::vec(any::<u8>(), 0..500),
                                        b in prop::collection::vec(any::<u8>(), 0..500)) {
        use flowzip_deflate::crc32::Crc32;
        let mut inc = Crc32::new();
        inc.update(&a);
        inc.update(&b);
        let mut joined = a.clone();
        joined.extend_from_slice(&b);
        prop_assert_eq!(inc.finish(), flowzip_deflate::crc32::crc32(&joined));
    }

    #[test]
    fn zlib_roundtrip(data in prop::collection::vec(any::<u8>(), 0..10_000)) {
        use flowzip_deflate::{zlib_compress, zlib_decompress};
        let z = zlib_compress(&data, Level::Default);
        prop_assert_eq!(&zlib_decompress(&z).unwrap(), &data);
        // Header check bits always valid.
        prop_assert_eq!(((z[0] as u16) << 8 | z[1] as u16) % 31, 0);
    }

    #[test]
    fn adler32_chunking_invariance(data in prop::collection::vec(any::<u8>(), 0..20_000)) {
        use flowzip_deflate::zlib::adler32;
        // One-shot equals any split — exercised implicitly by comparing
        // against a naive direct computation.
        let mut a = 1u64;
        let mut b = 0u64;
        for &byte in &data {
            a = (a + byte as u64) % 65_521;
            b = (b + a) % 65_521;
        }
        prop_assert_eq!(adler32(&data) as u64, (b << 16) | a);
    }
}
