//! From-scratch DEFLATE (RFC 1951) and gzip (RFC 1952) implementation.
//!
//! The paper's Figure 1 compares the proposed compressor against **GZIP**
//! ("The GZIP application and also ZIP and ZLIB use the deflation
//! algorithm", §5). No compression crate is pulled in; this crate
//! implements the whole stack the paper cites — Huffman coding \[1\],
//! LZ77 \[2\] and deflate \[3\] — so the baseline is self-contained:
//!
//! * [`bitio`] — LSB-first bit streams used by DEFLATE.
//! * [`huffman`] — canonical, length-limited Huffman codes.
//! * [`lz77`] — 32 KiB sliding-window match finder with lazy evaluation.
//! * [`deflate`] — block encoder (stored / fixed / dynamic, whichever is
//!   smallest).
//! * [`mod@inflate`] — full decoder.
//! * [`gzip`] — the RFC 1952 container with CRC-32.
//! * [`zlib`] — the RFC 1950 container with Adler-32.
//!
//! # Example
//!
//! ```
//! let data = b"how much wood would a woodchuck chuck if a woodchuck could chuck wood";
//! let z = flowzip_deflate::gzip_compress(data, flowzip_deflate::Level::Default);
//! let back = flowzip_deflate::gzip_decompress(&z).unwrap();
//! assert_eq!(back, data);
//! assert!(z.len() < data.len() + 18);
//! ```

pub mod bitio;
pub mod crc32;
pub mod deflate;
pub mod gzip;
pub mod huffman;
pub mod inflate;
pub mod lz77;
pub mod zlib;

pub use deflate::{deflate_compress, Level};
pub use gzip::{gzip_compress, gzip_decompress};
pub use inflate::{inflate, InflateError};
pub use zlib::{zlib_compress, zlib_decompress};

/// Compression ratio helper: `compressed / original`, the metric of §5
/// (smaller is better; gzip on TSH traces lands near 0.5).
pub fn ratio(compressed_len: usize, original_len: usize) -> f64 {
    if original_len == 0 {
        0.0
    } else {
        compressed_len as f64 / original_len as f64
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn ratio_handles_empty() {
        assert_eq!(super::ratio(10, 0), 0.0);
        assert!((super::ratio(50, 100) - 0.5).abs() < 1e-12);
    }
}
