//! Canonical, length-limited Huffman codes (RFC 1951 §3.2.2).
//!
//! DEFLATE transmits only *code lengths*; both sides derive the identical
//! canonical code from them. The encoder additionally needs to *choose*
//! lengths from symbol frequencies under a maximum-length constraint
//! (15 bits for literal/length and distance alphabets, 7 for the
//! code-length alphabet).

/// Maximum code length for the literal/length and distance alphabets.
pub const MAX_BITS: u32 = 15;

/// Derives length-limited Huffman code lengths from symbol frequencies.
///
/// Zero-frequency symbols get length 0 (absent). If only one symbol has
/// nonzero frequency it still gets a 1-bit code, as DEFLATE requires at
/// least one bit per coded symbol.
///
/// The length limit is enforced by the classic frequency-halving fallback:
/// if the unconstrained Huffman tree exceeds `max_bits`, frequencies are
/// scaled down (`(f + 1) / 2`) and the tree is rebuilt; this always
/// terminates because all frequencies eventually reach 1, whose tree depth
/// is ⌈log₂ n⌉ ≤ 15 for every DEFLATE alphabet.
///
/// # Panics
///
/// Panics if `max_bits` cannot possibly accommodate the alphabet
/// (`2^max_bits < number of used symbols`).
pub fn code_lengths(freqs: &[u64], max_bits: u32) -> Vec<u8> {
    let used = freqs.iter().filter(|&&f| f > 0).count();
    assert!(
        (1usize << max_bits) >= used,
        "alphabet of {used} symbols cannot fit in {max_bits}-bit codes"
    );
    let mut lengths = vec![0u8; freqs.len()];
    match used {
        0 => return lengths,
        1 => {
            let idx = freqs
                .iter()
                .position(|&f| f > 0)
                .expect("one symbol in use");
            lengths[idx] = 1;
            return lengths;
        }
        _ => {}
    }

    let mut scaled: Vec<u64> = freqs.to_vec();
    loop {
        let depths = huffman_depths(&scaled);
        let max = depths.iter().copied().max().unwrap_or(0);
        if max as u32 <= max_bits {
            for (l, d) in lengths.iter_mut().zip(depths) {
                *l = d;
            }
            return lengths;
        }
        for f in scaled.iter_mut().filter(|f| **f > 0) {
            *f = (*f).div_ceil(2);
        }
    }
}

/// Unconstrained Huffman depths via pairwise merging of the two least
/// frequent subtrees.
fn huffman_depths(freqs: &[u64]) -> Vec<u8> {
    #[derive(Debug)]
    struct Node {
        freq: u64,
        // Leaf: symbol index. Internal: children indices into `nodes`.
        kind: NodeKind,
    }
    #[derive(Debug)]
    enum NodeKind {
        Leaf(usize),
        Internal(usize, usize),
    }

    let mut nodes: Vec<Node> = Vec::new();
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>> =
        std::collections::BinaryHeap::new();
    for (sym, &f) in freqs.iter().enumerate() {
        if f > 0 {
            nodes.push(Node {
                freq: f,
                kind: NodeKind::Leaf(sym),
            });
            heap.push(std::cmp::Reverse((f, nodes.len() - 1)));
        }
    }
    while heap.len() > 1 {
        let std::cmp::Reverse((fa, a)) = heap.pop().expect("len > 1");
        let std::cmp::Reverse((fb, b)) = heap.pop().expect("len > 1");
        nodes.push(Node {
            freq: fa + fb,
            kind: NodeKind::Internal(a, b),
        });
        heap.push(std::cmp::Reverse((fa + fb, nodes.len() - 1)));
    }
    let root = heap.pop().expect("non-empty alphabet").0 .1;
    let _ = nodes[root].freq;

    let mut depths = vec![0u8; freqs.len()];
    let mut stack = vec![(root, 0u8)];
    while let Some((idx, depth)) = stack.pop() {
        match nodes[idx].kind {
            NodeKind::Leaf(sym) => depths[sym] = depth.max(1),
            NodeKind::Internal(a, b) => {
                stack.push((a, depth + 1));
                stack.push((b, depth + 1));
            }
        }
    }
    depths
}

/// Assigns canonical code values from lengths (RFC 1951 §3.2.2 algorithm).
///
/// Returns `codes[sym]`, the MSB-first code value for each symbol (0 for
/// absent symbols). Callers writing DEFLATE output must bit-reverse.
///
/// # Panics
///
/// Panics if the lengths oversubscribe the code space (invalid input), a
/// condition [`validate_lengths`] reports as an error instead.
pub fn canonical_codes(lengths: &[u8]) -> Vec<u32> {
    let max_len = lengths.iter().copied().max().unwrap_or(0) as usize;
    let mut bl_count = vec![0u32; max_len + 1];
    for &l in lengths {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let mut next_code = vec![0u32; max_len + 2];
    let mut code = 0u32;
    for bits in 1..=max_len {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
        assert!(
            code + bl_count[bits] <= 1 << bits,
            "oversubscribed code lengths"
        );
    }
    let mut codes = vec![0u32; lengths.len()];
    for (sym, &l) in lengths.iter().enumerate() {
        if l > 0 {
            codes[sym] = next_code[l as usize];
            next_code[l as usize] += 1;
        }
    }
    codes
}

/// Checks that a length set forms a valid (not oversubscribed) prefix code.
/// A complete code has `kraft == 1`; DEFLATE permits incomplete codes only
/// in degenerate single-symbol cases.
///
/// # Errors
///
/// Returns a description of the violation.
pub fn validate_lengths(lengths: &[u8], max_bits: u32) -> Result<(), String> {
    let mut kraft = 0u64;
    let unit = 1u64 << max_bits;
    for &l in lengths {
        if l as u32 > max_bits {
            return Err(format!("length {l} exceeds limit {max_bits}"));
        }
        if l > 0 {
            kraft += unit >> l;
        }
    }
    if kraft > unit {
        return Err(format!("oversubscribed: kraft sum {kraft} exceeds {unit}"));
    }
    Ok(())
}

/// Bit-by-bit canonical Huffman decoder.
///
/// Decoding walks the canonical code space: maintain the running code value
/// and, per length, the first code and the index of its first symbol.
#[derive(Debug, Clone)]
pub struct Decoder {
    /// `first_code[l]` — smallest code of length `l`.
    first_code: Vec<u32>,
    /// `first_symbol_index[l]` — offset into `symbols` of that code.
    first_index: Vec<u32>,
    /// count of codes at each length.
    counts: Vec<u32>,
    /// symbols ordered by (length, code).
    symbols: Vec<u16>,
    max_len: u32,
}

impl Decoder {
    /// Builds a decoder from code lengths.
    ///
    /// # Errors
    ///
    /// Returns an error when the lengths are not a valid prefix code.
    pub fn from_lengths(lengths: &[u8]) -> Result<Decoder, String> {
        let max_len = lengths.iter().copied().max().unwrap_or(0) as u32;
        if max_len == 0 {
            return Err("empty code".into());
        }
        validate_lengths(lengths, max_len.max(1))?;
        let mut counts = vec![0u32; max_len as usize + 1];
        for &l in lengths {
            if l > 0 {
                counts[l as usize] += 1;
            }
        }
        let mut first_code = vec![0u32; max_len as usize + 1];
        let mut first_index = vec![0u32; max_len as usize + 1];
        let mut code = 0u32;
        let mut index = 0u32;
        for l in 1..=max_len as usize {
            code = (code + counts[l - 1]) << 1;
            first_code[l] = code;
            first_index[l] = index;
            index += counts[l];
        }
        let mut symbols = vec![0u16; index as usize];
        let mut next_index: Vec<u32> = first_index.clone();
        for (sym, &l) in lengths.iter().enumerate() {
            if l > 0 {
                symbols[next_index[l as usize] as usize] = sym as u16;
                next_index[l as usize] += 1;
            }
        }
        Ok(Decoder {
            first_code,
            first_index,
            counts,
            symbols,
            max_len,
        })
    }

    /// Decodes one symbol from an MSB-first bit source.
    ///
    /// `next_bit` yields bits in code order (MSB first). Returns `None`
    /// when the bit source ends mid-code or the code is invalid.
    pub fn decode<F>(&self, mut next_bit: F) -> Option<u16>
    where
        F: FnMut() -> Option<u32>,
    {
        let mut code = 0u32;
        for l in 1..=self.max_len as usize {
            code = (code << 1) | next_bit()?;
            let count = self.counts[l];
            if count > 0 {
                let first = self.first_code[l];
                if code < first + count && code >= first {
                    let idx = self.first_index[l] + (code - first);
                    return Some(self.symbols[idx as usize]);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc_example_canonical_codes() {
        // RFC 1951 §3.2.2 worked example: lengths (3,3,3,3,3,2,4,4)
        // yield codes 010,011,100,101,110,00,1110,1111.
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let codes = canonical_codes(&lengths);
        assert_eq!(
            codes,
            vec![0b010, 0b011, 0b100, 0b101, 0b110, 0b00, 0b1110, 0b1111]
        );
    }

    #[test]
    fn lengths_from_skewed_frequencies() {
        // One dominant symbol gets the shortest code.
        let freqs = [100u64, 1, 1, 1];
        let lengths = code_lengths(&freqs, MAX_BITS);
        assert!(lengths[0] < lengths[1]);
        validate_lengths(&lengths, MAX_BITS).unwrap();
        // Kraft completeness for a full binary tree.
        let kraft: f64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!((kraft - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let freqs = [0u64, 7, 0];
        let lengths = code_lengths(&freqs, MAX_BITS);
        assert_eq!(lengths, vec![0, 1, 0]);
    }

    #[test]
    fn empty_alphabet_is_all_zero() {
        let lengths = code_lengths(&[0, 0, 0], MAX_BITS);
        assert_eq!(lengths, vec![0, 0, 0]);
    }

    #[test]
    fn length_limit_is_enforced() {
        // Fibonacci-ish frequencies force deep unconstrained trees.
        let mut freqs = vec![0u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lengths = code_lengths(&freqs, 10);
        assert!(lengths.iter().all(|&l| l <= 10));
        validate_lengths(&lengths, 10).unwrap();
        assert!(lengths.iter().any(|&l| l > 0));
    }

    #[test]
    fn validate_rejects_oversubscription() {
        // Three 1-bit codes cannot coexist.
        assert!(validate_lengths(&[1, 1, 1], 15).is_err());
        assert!(validate_lengths(&[1, 2, 2], 15).is_ok());
        assert!(validate_lengths(&[16], 15).is_err());
    }

    #[test]
    fn decoder_roundtrip() {
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let codes = canonical_codes(&lengths);
        let dec = Decoder::from_lengths(&lengths).unwrap();
        for sym in 0..lengths.len() {
            let code = codes[sym];
            let len = lengths[sym] as u32;
            let mut bits: Vec<u32> = (0..len).rev().map(|i| (code >> i) & 1).collect();
            bits.reverse(); // feed MSB first => reverse twice keeps order; build explicitly:
            let mut msb_first: Vec<u32> = (0..len).map(|i| (code >> (len - 1 - i)) & 1).collect();
            let mut iter = msb_first.drain(..);
            let got = dec.decode(|| iter.next()).unwrap();
            assert_eq!(got as usize, sym);
            let _ = bits.pop();
        }
    }

    #[test]
    fn decoder_rejects_truncated_input() {
        let lengths = [2u8, 2, 2, 2];
        let dec = Decoder::from_lengths(&lengths).unwrap();
        let mut once = [1u32].into_iter();
        assert_eq!(dec.decode(|| once.next()), None);
    }

    #[test]
    fn roundtrip_random_frequencies() {
        // encode/decode agreement across many alphabets
        let cases: Vec<Vec<u64>> = vec![
            vec![5, 5, 5, 5],
            vec![1, 2, 4, 8, 16, 32],
            vec![0, 0, 3, 0, 9, 1, 0, 2],
            (0..286).map(|i| (i % 7 + 1) as u64).collect(),
        ];
        for freqs in cases {
            let lengths = code_lengths(&freqs, MAX_BITS);
            validate_lengths(&lengths, MAX_BITS).unwrap();
            let codes = canonical_codes(&lengths);
            let dec = Decoder::from_lengths(&lengths).unwrap();
            for (sym, &l) in lengths.iter().enumerate() {
                if l == 0 {
                    continue;
                }
                let len = l as u32;
                let code = codes[sym];
                let mut msb: Vec<u32> = (0..len).map(|i| (code >> (len - 1 - i)) & 1).collect();
                let mut it = msb.drain(..);
                assert_eq!(dec.decode(|| it.next()), Some(sym as u16));
            }
        }
    }
}
