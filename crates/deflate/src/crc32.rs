//! CRC-32 (IEEE 802.3 polynomial, reflected) as required by gzip trailers.

/// The reflected CRC-32 polynomial used by gzip, zip and Ethernet.
pub const POLYNOMIAL: u32 = 0xEDB8_8320;

/// Streaming CRC-32 computation.
///
/// # Example
///
/// ```
/// let mut c = flowzip_deflate::crc32::Crc32::new();
/// c.update(b"123456789");
/// assert_eq!(c.finish(), 0xCBF43926); // the classic check value
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a new computation.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the running checksum.
    pub fn update(&mut self, data: &[u8]) {
        let table = table();
        let mut s = self.state;
        for &b in data {
            s = (s >> 8) ^ table[((s ^ b as u32) & 0xff) as usize];
        }
        self.state = s;
    }

    /// Returns the final checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    (c >> 1) ^ POLYNOMIAL
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data = b"hello, incremental crc world";
        let mut c = Crc32::new();
        c.update(&data[..5]);
        c.update(&data[5..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn finish_is_idempotent() {
        let mut c = Crc32::new();
        c.update(b"abc");
        let a = c.finish();
        let b = c.finish();
        assert_eq!(a, b);
    }
}
