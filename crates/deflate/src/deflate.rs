//! DEFLATE block encoder (RFC 1951).
//!
//! Each block is emitted in whichever representation is smallest:
//! **stored** (raw bytes), **fixed** Huffman, or **dynamic** Huffman with
//! transmitted code lengths. Input is split into ≤ 64 KiB blocks so the
//! stored fallback is always available.

use crate::bitio::{reverse_bits, BitWriter};
use crate::huffman;
use crate::lz77::{self, Token};

/// Number of literal/length symbols (0–285, with 286/287 reserved).
pub const NUM_LITLEN: usize = 286;
/// Number of distance symbols.
pub const NUM_DIST: usize = 30;
/// Number of code-length-alphabet symbols.
pub const NUM_CL: usize = 19;
/// End-of-block marker symbol.
pub const END_OF_BLOCK: usize = 256;

/// Base match length for each length symbol (257 + index).
pub const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
/// Extra bits for each length symbol.
pub const LENGTH_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
/// Base distance for each distance symbol.
pub const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
/// Extra bits for each distance symbol.
pub const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];
/// Transmission order of code-length-code lengths (RFC 1951 §3.2.7).
pub const CL_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// Maps a match length (3–258) to `(symbol, extra_bits, extra_value)`.
///
/// # Panics
///
/// Panics if `len` is outside the DEFLATE range.
pub fn length_symbol(len: u16) -> (u16, u8, u16) {
    assert!((3..=258).contains(&len), "match length {len} out of range");
    // Find the last base <= len.
    let idx = match LENGTH_BASE.binary_search(&len) {
        Ok(i) => i,
        Err(i) => i - 1,
    };
    (257 + idx as u16, LENGTH_EXTRA[idx], len - LENGTH_BASE[idx])
}

/// Maps a distance (1–32768) to `(symbol, extra_bits, extra_value)`.
///
/// # Panics
///
/// Panics if `dist` is outside the DEFLATE range.
pub fn distance_symbol(dist: u16) -> (u16, u8, u16) {
    assert!(dist >= 1, "distance must be positive");
    let idx = match DIST_BASE.binary_search(&dist) {
        Ok(i) => i,
        Err(i) => i - 1,
    };
    (idx as u16, DIST_EXTRA[idx], dist - DIST_BASE[idx])
}

/// Fixed literal/length code lengths (RFC 1951 §3.2.6).
pub fn fixed_litlen_lengths() -> Vec<u8> {
    let mut l = vec![0u8; 288];
    l[0..144].fill(8);
    l[144..256].fill(9);
    l[256..280].fill(7);
    l[280..288].fill(8);
    l
}

/// Fixed distance code lengths: thirty 5-bit codes.
pub fn fixed_dist_lengths() -> Vec<u8> {
    vec![5u8; 30]
}

/// Compression effort selector, mirroring gzip's familiar levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Level {
    /// Minimal effort, fastest.
    Fast,
    /// Balanced (gzip -6 equivalent); the default.
    #[default]
    Default,
    /// Maximum effort (gzip -9 equivalent).
    Best,
}

impl Level {
    fn effort(self) -> lz77::Effort {
        match self {
            Level::Fast => lz77::Effort::FAST,
            Level::Default => lz77::Effort::DEFAULT,
            Level::Best => lz77::Effort::BEST,
        }
    }
}

/// Maximum input bytes per emitted block (stored blocks cap at 65535; a
/// round 64 KiB − 1 keeps the fallback legal).
const BLOCK_INPUT_LIMIT: usize = 65_535;

/// Compresses `data` into a raw DEFLATE stream.
pub fn deflate_compress(data: &[u8], level: Level) -> Vec<u8> {
    let tokens = lz77::tokenize(data, level.effort());
    let mut w = BitWriter::new();

    // Partition the token stream into blocks covering <= BLOCK_INPUT_LIMIT
    // input bytes each, so any block may fall back to stored form.
    let mut blocks: Vec<(usize, usize, usize, usize)> = Vec::new(); // (tok_start, tok_end, byte_start, byte_end)
    {
        let mut tok_start = 0usize;
        let mut byte_start = 0usize;
        let mut byte_pos = 0usize;
        for (i, t) in tokens.iter().enumerate() {
            let tlen = match t {
                Token::Literal(_) => 1,
                Token::Match { length, .. } => *length as usize,
            };
            byte_pos += tlen;
            if byte_pos - byte_start >= BLOCK_INPUT_LIMIT {
                blocks.push((tok_start, i + 1, byte_start, byte_pos));
                tok_start = i + 1;
                byte_start = byte_pos;
            }
        }
        if tok_start < tokens.len() || blocks.is_empty() {
            blocks.push((tok_start, tokens.len(), byte_start, byte_pos));
        }
    }

    let nblocks = blocks.len();
    for (bi, (ts, te, bs, be)) in blocks.into_iter().enumerate() {
        let is_final = bi + 1 == nblocks;
        emit_block(&mut w, &tokens[ts..te], &data[bs..be], is_final);
    }
    w.finish()
}

fn emit_block(w: &mut BitWriter, tokens: &[Token], raw: &[u8], is_final: bool) {
    // Gather frequencies.
    let mut lit_freq = vec![0u64; NUM_LITLEN];
    let mut dist_freq = vec![0u64; NUM_DIST];
    for t in tokens {
        match *t {
            Token::Literal(b) => lit_freq[b as usize] += 1,
            Token::Match { length, distance } => {
                let (ls, _, _) = length_symbol(length);
                let (ds, _, _) = distance_symbol(distance);
                lit_freq[ls as usize] += 1;
                dist_freq[ds as usize] += 1;
            }
        }
    }
    lit_freq[END_OF_BLOCK] += 1;

    // Dynamic code construction.
    let lit_lengths = huffman::code_lengths(&lit_freq, huffman::MAX_BITS);
    let mut dist_lengths = huffman::code_lengths(&dist_freq, huffman::MAX_BITS);
    if dist_lengths.iter().all(|&l| l == 0) {
        // No distances used: RFC permits a single incomplete 1-bit code.
        dist_lengths[0] = 1;
    }

    let dynamic_cost =
        dynamic_block_cost(tokens, &lit_lengths, &dist_lengths, &lit_freq, &dist_freq);
    let fixed_cost = fixed_block_cost(&lit_freq, &dist_freq);
    let stored_cost = 8 * (5 + raw.len() as u64) + 2; // header-ish estimate in bits

    if stored_cost < dynamic_cost && stored_cost < fixed_cost {
        emit_stored(w, raw, is_final);
    } else if fixed_cost <= dynamic_cost {
        emit_coded(
            w,
            tokens,
            &fixed_litlen_lengths(),
            &fixed_dist_lengths(),
            BlockKind::Fixed,
            is_final,
        );
    } else {
        emit_coded(
            w,
            tokens,
            &lit_lengths,
            &dist_lengths,
            BlockKind::Dynamic,
            is_final,
        );
    }
}

enum BlockKind {
    Fixed,
    Dynamic,
}

fn emit_stored(w: &mut BitWriter, raw: &[u8], is_final: bool) {
    // Stored blocks are limited to 65535 bytes; the block splitter
    // guarantees `raw` fits.
    debug_assert!(raw.len() <= 65_535);
    w.write_bits(is_final as u32, 1);
    w.write_bits(0b00, 2); // BTYPE=00 stored
    w.align_to_byte();
    let len = raw.len() as u16;
    w.write_bytes(&len.to_le_bytes());
    w.write_bytes(&(!len).to_le_bytes());
    w.write_bytes(raw);
}

fn emit_coded(
    w: &mut BitWriter,
    tokens: &[Token],
    lit_lengths: &[u8],
    dist_lengths: &[u8],
    kind: BlockKind,
    is_final: bool,
) {
    w.write_bits(is_final as u32, 1);
    match kind {
        BlockKind::Fixed => w.write_bits(0b01, 2),
        BlockKind::Dynamic => {
            w.write_bits(0b10, 2);
            emit_code_length_tables(w, lit_lengths, dist_lengths);
        }
    }
    let lit_codes = huffman::canonical_codes(lit_lengths);
    let dist_codes = huffman::canonical_codes(dist_lengths);
    let put = |w: &mut BitWriter, code: u32, len: u8| {
        debug_assert!(len > 0, "writing absent symbol");
        w.write_bits(reverse_bits(code, len as u32), len as u32);
    };
    for t in tokens {
        match *t {
            Token::Literal(b) => put(w, lit_codes[b as usize], lit_lengths[b as usize]),
            Token::Match { length, distance } => {
                let (ls, lext, lval) = length_symbol(length);
                put(w, lit_codes[ls as usize], lit_lengths[ls as usize]);
                if lext > 0 {
                    w.write_bits(lval as u32, lext as u32);
                }
                let (ds, dext, dval) = distance_symbol(distance);
                put(w, dist_codes[ds as usize], dist_lengths[ds as usize]);
                if dext > 0 {
                    w.write_bits(dval as u32, dext as u32);
                }
            }
        }
    }
    put(w, lit_codes[END_OF_BLOCK], lit_lengths[END_OF_BLOCK]);
}

/// Run-length encodes `lengths` into the code-length alphabet
/// (symbols 0–15 literal, 16 repeat-prev, 17/18 repeat-zero).
fn rle_code_lengths(lengths: &[u8]) -> Vec<(u8, u8, u8)> {
    // (symbol, extra_bits, extra_value)
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < lengths.len() {
        let v = lengths[i];
        let mut run = 1usize;
        while i + run < lengths.len() && lengths[i + run] == v {
            run += 1;
        }
        if v == 0 {
            let mut rem = run;
            while rem >= 11 {
                let take = rem.min(138);
                out.push((18, 7, (take - 11) as u8));
                rem -= take;
            }
            if rem >= 3 {
                out.push((17, 3, (rem - 3) as u8));
                rem = 0;
            }
            for _ in 0..rem {
                out.push((0, 0, 0));
            }
        } else {
            out.push((v, 0, 0));
            let mut rem = run - 1;
            while rem >= 3 {
                let take = rem.min(6);
                out.push((16, 2, (take - 3) as u8));
                rem -= take;
            }
            for _ in 0..rem {
                out.push((v, 0, 0));
            }
        }
        i += run;
    }
    out
}

fn emit_code_length_tables(w: &mut BitWriter, lit_lengths: &[u8], dist_lengths: &[u8]) {
    // Trim trailing zeros but respect minimums (257 lit, 1 dist).
    let hlit = lit_lengths
        .iter()
        .rposition(|&l| l > 0)
        .map(|p| p + 1)
        .unwrap_or(0)
        .max(257);
    let hdist = dist_lengths
        .iter()
        .rposition(|&l| l > 0)
        .map(|p| p + 1)
        .unwrap_or(0)
        .max(1);

    let mut combined = Vec::with_capacity(hlit + hdist);
    combined.extend_from_slice(&lit_lengths[..hlit]);
    combined.extend_from_slice(&dist_lengths[..hdist]);
    let rle = rle_code_lengths(&combined);

    let mut cl_freq = vec![0u64; NUM_CL];
    for &(sym, _, _) in &rle {
        cl_freq[sym as usize] += 1;
    }
    let cl_lengths = huffman::code_lengths(&cl_freq, 7);
    let cl_codes = huffman::canonical_codes(&cl_lengths);

    let hclen = CL_ORDER
        .iter()
        .rposition(|&s| cl_lengths[s] > 0)
        .map(|p| p + 1)
        .unwrap_or(4)
        .max(4);

    w.write_bits((hlit - 257) as u32, 5);
    w.write_bits((hdist - 1) as u32, 5);
    w.write_bits((hclen - 4) as u32, 4);
    for &s in CL_ORDER.iter().take(hclen) {
        w.write_bits(cl_lengths[s] as u32, 3);
    }
    for &(sym, ext_bits, ext_val) in &rle {
        let s = sym as usize;
        w.write_bits(
            reverse_bits(cl_codes[s], cl_lengths[s] as u32),
            cl_lengths[s] as u32,
        );
        if ext_bits > 0 {
            w.write_bits(ext_val as u32, ext_bits as u32);
        }
    }
}

fn coded_payload_cost(
    lit_freq: &[u64],
    dist_freq: &[u64],
    lit_lengths: &[u8],
    dist_lengths: &[u8],
) -> u64 {
    let mut bits = 0u64;
    for (sym, &f) in lit_freq.iter().enumerate() {
        if f > 0 {
            bits += f * lit_lengths[sym] as u64;
            if sym > 256 {
                bits += f * LENGTH_EXTRA[sym - 257] as u64;
            }
        }
    }
    for (sym, &f) in dist_freq.iter().enumerate() {
        if f > 0 {
            bits += f * (dist_lengths[sym] as u64 + DIST_EXTRA[sym] as u64);
        }
    }
    bits
}

fn fixed_block_cost(lit_freq: &[u64], dist_freq: &[u64]) -> u64 {
    3 + coded_payload_cost(
        lit_freq,
        dist_freq,
        &fixed_litlen_lengths(),
        &fixed_dist_lengths(),
    )
}

fn dynamic_block_cost(
    _tokens: &[Token],
    lit_lengths: &[u8],
    dist_lengths: &[u8],
    lit_freq: &[u64],
    dist_freq: &[u64],
) -> u64 {
    // Header cost: approximate by re-running the RLE (cheap relative to
    // the payload) and pricing with the real code-length code.
    let hlit = lit_lengths
        .iter()
        .rposition(|&l| l > 0)
        .map(|p| p + 1)
        .unwrap_or(0)
        .max(257);
    let hdist = dist_lengths
        .iter()
        .rposition(|&l| l > 0)
        .map(|p| p + 1)
        .unwrap_or(0)
        .max(1);
    let mut combined = Vec::with_capacity(hlit + hdist);
    combined.extend_from_slice(&lit_lengths[..hlit]);
    combined.extend_from_slice(&dist_lengths[..hdist]);
    let rle = rle_code_lengths(&combined);
    let mut cl_freq = vec![0u64; NUM_CL];
    let mut extra_bits = 0u64;
    for &(sym, ext, _) in &rle {
        cl_freq[sym as usize] += 1;
        extra_bits += ext as u64;
    }
    let cl_lengths = huffman::code_lengths(&cl_freq, 7);
    let header = 3
        + 5
        + 5
        + 4
        + 19 * 3 // upper bound on HCLEN section
        + rle
            .iter()
            .map(|&(s, _, _)| cl_lengths[s as usize] as u64)
            .sum::<u64>()
        + extra_bits;
    header + coded_payload_cost(lit_freq, dist_freq, lit_lengths, dist_lengths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflate::inflate;

    #[test]
    fn length_symbol_boundaries() {
        assert_eq!(length_symbol(3), (257, 0, 0));
        assert_eq!(length_symbol(10), (264, 0, 0));
        assert_eq!(length_symbol(11), (265, 1, 0));
        assert_eq!(length_symbol(12), (265, 1, 1));
        assert_eq!(length_symbol(257), (284, 5, 30));
        assert_eq!(length_symbol(258), (285, 0, 0));
    }

    #[test]
    fn distance_symbol_boundaries() {
        assert_eq!(distance_symbol(1), (0, 0, 0));
        assert_eq!(distance_symbol(4), (3, 0, 0));
        assert_eq!(distance_symbol(5), (4, 1, 0));
        assert_eq!(distance_symbol(6), (4, 1, 1));
        assert_eq!(distance_symbol(24577), (29, 13, 0));
        assert_eq!(distance_symbol(32768), (29, 13, 8191));
    }

    #[test]
    fn fixed_table_shape() {
        let l = fixed_litlen_lengths();
        assert_eq!(l[0], 8);
        assert_eq!(l[143], 8);
        assert_eq!(l[144], 9);
        assert_eq!(l[255], 9);
        assert_eq!(l[256], 7);
        assert_eq!(l[279], 7);
        assert_eq!(l[280], 8);
        assert_eq!(l[287], 8);
        crate::huffman::validate_lengths(&l, 15).unwrap();
    }

    #[test]
    fn rle_encodes_runs() {
        let lengths = [0u8; 20];
        let rle = rle_code_lengths(&lengths);
        assert_eq!(rle, vec![(18, 7, 9)]); // 20 zeros = sym18 with 20-11=9
        let lengths = [5u8; 8];
        let rle = rle_code_lengths(&lengths);
        assert_eq!(rle, vec![(5, 0, 0), (16, 2, 3), (5, 0, 0)]); // 5, rep6, 5
    }

    #[test]
    fn roundtrip_simple() {
        for data in [
            &b""[..],
            &b"a"[..],
            &b"hello hello hello hello"[..],
            &[0u8; 100_000][..],
        ] {
            for level in [Level::Fast, Level::Default, Level::Best] {
                let z = deflate_compress(data, level);
                let back = inflate(&z).unwrap();
                assert_eq!(back, data, "level {level:?} len {}", data.len());
            }
        }
    }

    #[test]
    fn roundtrip_multi_block() {
        // > 64 KiB forces multiple blocks.
        let data: Vec<u8> = (0..200_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let z = deflate_compress(&data, Level::Default);
        assert_eq!(inflate(&z).unwrap(), data);
    }

    #[test]
    fn compressible_data_shrinks() {
        let data = b"abcdefgh".repeat(5_000);
        let z = deflate_compress(&data, Level::Default);
        assert!(z.len() < data.len() / 10, "{} vs {}", z.len(), data.len());
    }

    #[test]
    fn incompressible_data_stays_near_original() {
        // Pseudo-random bytes: stored blocks keep the blow-up tiny.
        let mut state = 0x12345678u32;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 24) as u8
            })
            .collect();
        let z = deflate_compress(&data, Level::Default);
        assert!(z.len() <= data.len() + data.len() / 100 + 64);
        assert_eq!(inflate(&z).unwrap(), data);
    }
}
