//! zlib container (RFC 1950) — the third member of the paper's "GZIP and
//! also ZIP and ZLIB use the deflation algorithm" family: a 2-byte header
//! and an Adler-32 trailer around a raw DEFLATE stream.

use crate::deflate::{deflate_compress, Level};
use crate::inflate::{inflate, InflateError};
use std::fmt;

/// Compression method + 32 KiB window (CMF byte).
pub const CMF: u8 = 0x78;
/// Largest Adler-32 modulus prime.
const ADLER_MOD: u32 = 65_521;

/// Errors from parsing a zlib stream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ZlibError {
    /// Too short for header + trailer.
    Truncated,
    /// CMF/FLG check failed or a preset dictionary was demanded.
    BadHeader,
    /// Body failed to inflate.
    Inflate(InflateError),
    /// Adler-32 of the output did not match the trailer.
    ChecksumMismatch {
        /// Expected (from trailer).
        expected: u32,
        /// Computed over the output.
        actual: u32,
    },
}

impl fmt::Display for ZlibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZlibError::Truncated => write!(f, "zlib stream truncated"),
            ZlibError::BadHeader => write!(f, "bad zlib header"),
            ZlibError::Inflate(e) => write!(f, "zlib body: {e}"),
            ZlibError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "adler32 mismatch: expected {expected:#10x}, got {actual:#10x}"
                )
            }
        }
    }
}

impl std::error::Error for ZlibError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ZlibError::Inflate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<InflateError> for ZlibError {
    fn from(e: InflateError) -> Self {
        ZlibError::Inflate(e)
    }
}

/// Adler-32 checksum (RFC 1950 §9).
pub fn adler32(data: &[u8]) -> u32 {
    let mut a = 1u32;
    let mut b = 0u32;
    // Process in chunks small enough that the u32 sums cannot overflow
    // before a modulo (5552 is the classic bound).
    for chunk in data.chunks(5_552) {
        for &byte in chunk {
            a += byte as u32;
            b += a;
        }
        a %= ADLER_MOD;
        b %= ADLER_MOD;
    }
    (b << 16) | a
}

/// Compresses into a zlib stream.
pub fn zlib_compress(data: &[u8], level: Level) -> Vec<u8> {
    let body = deflate_compress(data, level);
    let mut out = Vec::with_capacity(body.len() + 6);
    out.push(CMF);
    // FLG: no dictionary, level bits, and the check requirement
    // (CMF·256 + FLG) % 31 == 0.
    let flevel: u8 = match level {
        Level::Fast => 1,
        Level::Default => 2,
        Level::Best => 3,
    };
    let mut flg = flevel << 6;
    let rem = ((CMF as u16) << 8 | flg as u16) % 31;
    if rem != 0 {
        flg += (31 - rem) as u8;
    }
    out.push(flg);
    out.extend_from_slice(&body);
    out.extend_from_slice(&adler32(data).to_be_bytes());
    out
}

/// Decompresses a zlib stream, verifying the Adler-32 trailer.
///
/// # Errors
///
/// Returns [`ZlibError`] for malformed containers, inflate failures or
/// checksum mismatches. Preset dictionaries (FDICT) are not supported.
pub fn zlib_decompress(data: &[u8]) -> Result<Vec<u8>, ZlibError> {
    if data.len() < 6 {
        return Err(ZlibError::Truncated);
    }
    let cmf = data[0];
    let flg = data[1];
    if cmf & 0x0f != 8 || !((cmf as u16) << 8 | flg as u16).is_multiple_of(31) {
        return Err(ZlibError::BadHeader);
    }
    if flg & 0x20 != 0 {
        return Err(ZlibError::BadHeader); // FDICT unsupported
    }
    let body = &data[2..data.len() - 4];
    let out = inflate(body)?;
    let trailer = &data[data.len() - 4..];
    let expected = u32::from_be_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let actual = adler32(&out);
    if expected != actual {
        return Err(ZlibError::ChecksumMismatch { expected, actual });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adler32_known_vectors() {
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
        // Long input exercises the chunked modulo path.
        let long = vec![0xffu8; 100_000];
        let v = adler32(&long);
        assert!(v > 0);
        assert_eq!(v, adler32(&long));
    }

    #[test]
    fn roundtrip_all_levels() {
        let data = b"zlib container roundtrip: zlib zlib zlib zlib!";
        for level in [Level::Fast, Level::Default, Level::Best] {
            let z = zlib_compress(data, level);
            assert_eq!(zlib_decompress(&z).unwrap(), data);
        }
    }

    #[test]
    fn header_check_bits_valid() {
        for level in [Level::Fast, Level::Default, Level::Best] {
            let z = zlib_compress(b"x", level);
            assert_eq!(((z[0] as u16) << 8 | z[1] as u16) % 31, 0);
            assert_eq!(z[0] & 0x0f, 8);
        }
    }

    #[test]
    fn corruption_detected() {
        let mut z = zlib_compress(b"protect me from flips", Level::Default);
        let n = z.len();
        z[n - 1] ^= 0xff; // trailer
        assert!(matches!(
            zlib_decompress(&z),
            Err(ZlibError::ChecksumMismatch { .. })
        ));
        let mut z2 = zlib_compress(b"data", Level::Default);
        z2[0] = 0x00;
        assert_eq!(zlib_decompress(&z2), Err(ZlibError::BadHeader));
        assert_eq!(zlib_decompress(&[0x78]), Err(ZlibError::Truncated));
    }

    #[test]
    fn fdict_rejected() {
        let mut z = zlib_compress(b"data", Level::Default);
        z[1] |= 0x20;
        // Re-fix the check bits so only FDICT differs.
        let rem = ((z[0] as u16) << 8 | (z[1] & !0x1f) as u16) % 31;
        z[1] = (z[1] & !0x1f) | ((31 - rem) % 31) as u8;
        assert_eq!(zlib_decompress(&z), Err(ZlibError::BadHeader));
    }

    #[test]
    fn empty_input_roundtrip() {
        let z = zlib_compress(b"", Level::Default);
        assert_eq!(zlib_decompress(&z).unwrap(), b"");
        assert_eq!(&z[z.len() - 4..], &1u32.to_be_bytes()); // adler of ""
    }
}
