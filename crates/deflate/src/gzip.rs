//! gzip container (RFC 1952): 10-byte header, DEFLATE body, CRC-32 +
//! length trailer — what the paper's "GZIP method" curve in Figure 1
//! measures.

use crate::crc32::crc32;
use crate::deflate::{deflate_compress, Level};
use crate::inflate::{inflate, InflateError};
use std::fmt;

/// gzip magic bytes.
pub const MAGIC: [u8; 2] = [0x1f, 0x8b];
/// Compression method 8 = deflate (the only defined one).
pub const METHOD_DEFLATE: u8 = 8;
/// Fixed container overhead: 10-byte header + 8-byte trailer.
pub const OVERHEAD: usize = 18;

/// Errors from parsing a gzip file.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GzipError {
    /// Too short to hold header + trailer.
    Truncated,
    /// Wrong magic bytes or compression method.
    BadHeader,
    /// Flags demand header extensions this minimal reader rejects.
    UnsupportedFlags(u8),
    /// Body failed to inflate.
    Inflate(InflateError),
    /// CRC-32 of the output did not match the trailer.
    CrcMismatch {
        /// CRC from the trailer.
        expected: u32,
        /// CRC of the decompressed data.
        actual: u32,
    },
    /// ISIZE trailer did not match the output length (mod 2^32).
    LengthMismatch {
        /// ISIZE from the trailer.
        expected: u32,
        /// Actual output length (mod 2^32).
        actual: u32,
    },
}

impl fmt::Display for GzipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GzipError::Truncated => write!(f, "gzip stream truncated"),
            GzipError::BadHeader => write!(f, "bad gzip header"),
            GzipError::UnsupportedFlags(fl) => write!(f, "unsupported gzip flags {fl:#x}"),
            GzipError::Inflate(e) => write!(f, "gzip body: {e}"),
            GzipError::CrcMismatch { expected, actual } => {
                write!(
                    f,
                    "gzip crc mismatch: expected {expected:#10x}, got {actual:#10x}"
                )
            }
            GzipError::LengthMismatch { expected, actual } => {
                write!(f, "gzip length mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for GzipError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GzipError::Inflate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<InflateError> for GzipError {
    fn from(e: InflateError) -> Self {
        GzipError::Inflate(e)
    }
}

/// Compresses `data` into a complete gzip file image.
pub fn gzip_compress(data: &[u8], level: Level) -> Vec<u8> {
    let body = deflate_compress(data, level);
    let mut out = Vec::with_capacity(body.len() + OVERHEAD);
    out.extend_from_slice(&MAGIC);
    out.push(METHOD_DEFLATE);
    out.push(0); // FLG: no name/comment/extra/crc16
    out.extend_from_slice(&[0, 0, 0, 0]); // MTIME unknown
    out.push(match level {
        Level::Best => 2,
        Level::Fast => 4,
        Level::Default => 0,
    }); // XFL
    out.push(255); // OS unknown
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

/// Decompresses a gzip file image, verifying CRC-32 and length trailers.
///
/// # Errors
///
/// Returns [`GzipError`] for malformed containers, inflate failures or
/// trailer mismatches.
pub fn gzip_decompress(data: &[u8]) -> Result<Vec<u8>, GzipError> {
    if data.len() < OVERHEAD {
        return Err(GzipError::Truncated);
    }
    if data[0..2] != MAGIC || data[2] != METHOD_DEFLATE {
        return Err(GzipError::BadHeader);
    }
    let flags = data[3];
    if flags != 0 {
        // FTEXT (bit 0) is advisory; any other flag adds header fields.
        if flags & !0x01 != 0 {
            return Err(GzipError::UnsupportedFlags(flags));
        }
    }
    let body = &data[10..data.len() - 8];
    let out = inflate(body)?;
    let trailer = &data[data.len() - 8..];
    let expected_crc = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let expected_len = u32::from_le_bytes([trailer[4], trailer[5], trailer[6], trailer[7]]);
    let actual_crc = crc32(&out);
    if actual_crc != expected_crc {
        return Err(GzipError::CrcMismatch {
            expected: expected_crc,
            actual: actual_crc,
        });
    }
    let actual_len = out.len() as u32;
    if actual_len != expected_len {
        return Err(GzipError::LengthMismatch {
            expected: expected_len,
            actual: actual_len,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_levels() {
        let data = b"gzip container roundtrip test data, repeated: gzip container!";
        for level in [Level::Fast, Level::Default, Level::Best] {
            let z = gzip_compress(data, level);
            assert_eq!(gzip_decompress(&z).unwrap(), data);
        }
    }

    #[test]
    fn empty_input_roundtrip() {
        let z = gzip_compress(b"", Level::Default);
        assert_eq!(gzip_decompress(&z).unwrap(), b"");
        assert_eq!(&z[0..2], &MAGIC);
    }

    #[test]
    fn header_fields() {
        let z = gzip_compress(b"x", Level::Default);
        assert_eq!(z[2], METHOD_DEFLATE);
        assert_eq!(z[3], 0); // no flags
        assert_eq!(z[9], 255); // OS unknown
    }

    #[test]
    fn corrupt_magic_rejected() {
        let mut z = gzip_compress(b"data", Level::Default);
        z[0] = 0;
        assert_eq!(gzip_decompress(&z), Err(GzipError::BadHeader));
    }

    #[test]
    fn corrupt_crc_rejected() {
        let mut z = gzip_compress(b"data to protect", Level::Default);
        let n = z.len();
        z[n - 8] ^= 0xff;
        assert!(matches!(
            gzip_decompress(&z),
            Err(GzipError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn corrupt_length_rejected() {
        let mut z = gzip_compress(b"data to protect", Level::Default);
        let n = z.len();
        z[n - 1] ^= 0xff;
        assert!(matches!(
            gzip_decompress(&z),
            Err(GzipError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(gzip_decompress(&[0x1f, 0x8b]), Err(GzipError::Truncated));
    }

    #[test]
    fn unsupported_flags_rejected() {
        let mut z = gzip_compress(b"data", Level::Default);
        z[3] = 0x08; // FNAME
        assert_eq!(gzip_decompress(&z), Err(GzipError::UnsupportedFlags(0x08)));
    }

    #[test]
    fn overhead_is_constant() {
        let z = gzip_compress(b"", Level::Default);
        // empty deflate stream: one empty final block (couple of bytes)
        assert!(z.len() <= OVERHEAD + 8);
    }
}
