//! LZ77 sliding-window match finder (the \[2\] of the paper's related work).
//!
//! Produces the literal/match token stream DEFLATE entropy-codes. Matching
//! uses the zlib approach: a 3-byte rolling hash indexes chain heads, and
//! `prev[]` links earlier occurrences; *lazy matching* defers emitting a
//! match by one position when the next position matches longer.

/// DEFLATE window size: matches may reach back at most this far.
pub const WINDOW_SIZE: usize = 32 * 1024;
/// Minimum match length DEFLATE can encode.
pub const MIN_MATCH: usize = 3;
/// Maximum match length DEFLATE can encode.
pub const MAX_MATCH: usize = 258;

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// One LZ77 token: a literal byte or a back-reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single literal byte.
    Literal(u8),
    /// A `(length, distance)` back-reference: copy `length` bytes from
    /// `distance` bytes back.
    Match {
        /// Match length in `MIN_MATCH..=MAX_MATCH`.
        length: u16,
        /// Distance in `1..=WINDOW_SIZE`.
        distance: u16,
    },
}

/// Match-effort knob: how many chain links to inspect per position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Effort {
    /// Maximum hash-chain links followed per position.
    pub max_chain: usize,
    /// Stop early when a match at least this long is found.
    pub good_enough: usize,
    /// Whether to lazy-evaluate (peek one position ahead).
    pub lazy: bool,
}

impl Effort {
    /// Fast, short chains (zlib level ~1-3).
    pub const FAST: Effort = Effort {
        max_chain: 8,
        good_enough: 16,
        lazy: false,
    };
    /// Balanced default (zlib level ~6).
    pub const DEFAULT: Effort = Effort {
        max_chain: 128,
        good_enough: 64,
        lazy: true,
    };
    /// Thorough search (zlib level ~9).
    pub const BEST: Effort = Effort {
        max_chain: 1024,
        good_enough: 258,
        lazy: true,
    };
}

#[inline]
fn hash3(data: &[u8], pos: usize) -> usize {
    let v = (data[pos] as u32) | ((data[pos + 1] as u32) << 8) | ((data[pos + 2] as u32) << 16);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Tokenizes `data` into literals and matches.
///
/// The output, replayed by [`expand`], reproduces `data` exactly.
pub fn tokenize(data: &[u8], effort: Effort) -> Vec<Token> {
    let n = data.len();
    let mut tokens = Vec::with_capacity(n / 3 + 16);
    if n < MIN_MATCH + 1 {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }

    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; n];

    let insert = |head: &mut Vec<usize>, prev: &mut Vec<usize>, pos: usize| {
        if pos + MIN_MATCH <= n {
            let h = hash3(data, pos);
            prev[pos] = head[h];
            head[h] = pos;
        }
    };

    let find_match = |head: &Vec<usize>, prev: &Vec<usize>, pos: usize| -> Option<(usize, usize)> {
        if pos + MIN_MATCH > n {
            return None;
        }
        let h = hash3(data, pos);
        let mut cand = head[h];
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let max_len = MAX_MATCH.min(n - pos);
        let mut chains = effort.max_chain;
        while cand != usize::MAX && chains > 0 {
            let dist = pos - cand;
            if dist > WINDOW_SIZE {
                break;
            }
            // Quick reject on the byte after the current best.
            if best_dist == 0 || data[cand + best_len] == data[pos + best_len] {
                let mut len = 0usize;
                while len < max_len && data[cand + len] == data[pos + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = dist;
                    if len >= effort.good_enough || len == max_len {
                        break;
                    }
                }
            }
            cand = prev[cand];
            chains -= 1;
        }
        if best_len >= MIN_MATCH {
            Some((best_len, best_dist))
        } else {
            None
        }
    };

    let mut pos = 0usize;
    let mut pending: Option<(usize, usize)> = None; // deferred match at pos-1
    while pos < n {
        let here = find_match(&head, &prev, pos);
        if let Some((plen, pdist)) = pending.take() {
            // A match was deferred at pos-1; emit whichever is longer.
            match here {
                Some((hlen, _)) if effort.lazy && hlen > plen => {
                    // The new position wins: previous byte becomes a literal,
                    // current match stays pending.
                    tokens.push(Token::Literal(data[pos - 1]));
                    insert(&mut head, &mut prev, pos);
                    pending = here;
                    pos += 1;
                    continue;
                }
                _ => {
                    // Previous match wins.
                    tokens.push(Token::Match {
                        length: plen as u16,
                        distance: pdist as u16,
                    });
                    // Insert hash entries for the matched region (pos-1+1 .. pos-1+plen)
                    let end = pos - 1 + plen;
                    let mut p = pos;
                    while p < end && p < n {
                        insert(&mut head, &mut prev, p);
                        p += 1;
                    }
                    pos = end;
                    continue;
                }
            }
        }
        match here {
            Some((len, dist)) => {
                insert(&mut head, &mut prev, pos);
                if effort.lazy && len < effort.good_enough && pos + 1 < n {
                    pending = Some((len, dist));
                    pos += 1;
                } else {
                    tokens.push(Token::Match {
                        length: len as u16,
                        distance: dist as u16,
                    });
                    let end = pos + len;
                    let mut p = pos + 1;
                    while p < end && p < n {
                        insert(&mut head, &mut prev, p);
                        p += 1;
                    }
                    pos = end;
                }
            }
            None => {
                insert(&mut head, &mut prev, pos);
                tokens.push(Token::Literal(data[pos]));
                pos += 1;
            }
        }
    }
    if let Some((plen, pdist)) = pending {
        tokens.push(Token::Match {
            length: plen as u16,
            distance: pdist as u16,
        });
    }
    tokens
}

/// Replays a token stream back into bytes (the LZ77 inverse, also used by
/// the inflate back-end).
pub fn expand(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { length, distance } => {
                let dist = distance as usize;
                let len = length as usize;
                assert!(dist >= 1 && dist <= out.len(), "invalid distance");
                let start = out.len() - dist;
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], effort: Effort) {
        let tokens = tokenize(data, effort);
        assert_eq!(expand(&tokens), data, "effort {effort:?}");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        roundtrip(b"", Effort::DEFAULT);
        roundtrip(b"a", Effort::DEFAULT);
        roundtrip(b"ab", Effort::DEFAULT);
        roundtrip(b"abc", Effort::DEFAULT);
    }

    #[test]
    fn repetitive_input_produces_matches() {
        let data = b"abcabcabcabcabcabcabcabc";
        let tokens = tokenize(data, Effort::DEFAULT);
        assert!(tokens.iter().any(|t| matches!(t, Token::Match { .. })));
        assert_eq!(expand(&tokens), data);
        // Should be far fewer tokens than bytes.
        assert!(tokens.len() < data.len() / 2);
    }

    #[test]
    fn incompressible_input_is_all_literals() {
        let data: Vec<u8> = (0..=255u8).collect();
        let tokens = tokenize(&data, Effort::DEFAULT);
        assert!(tokens.iter().all(|t| matches!(t, Token::Literal(_))));
        assert_eq!(expand(&tokens), data);
    }

    #[test]
    fn overlapping_match_run() {
        // "aaaa..." exercises distance-1 overlapping copies.
        let data = vec![b'a'; 1000];
        let tokens = tokenize(&data, Effort::DEFAULT);
        assert_eq!(expand(&tokens), data);
        assert!(tokens.len() <= 1 + (1000 / MAX_MATCH + 1));
    }

    #[test]
    fn all_efforts_roundtrip() {
        let mut data = Vec::new();
        for i in 0..5000u32 {
            data.push((i % 251) as u8);
            if i % 7 == 0 {
                data.extend_from_slice(b"common substring here");
            }
        }
        for effort in [Effort::FAST, Effort::DEFAULT, Effort::BEST] {
            roundtrip(&data, effort);
        }
    }

    #[test]
    fn match_length_bounds_respected() {
        let data = vec![b'x'; 10_000];
        for t in tokenize(&data, Effort::BEST) {
            if let Token::Match { length, distance } = t {
                assert!((MIN_MATCH..=MAX_MATCH).contains(&(length as usize)));
                assert!(distance as usize >= 1);
                assert!(distance as usize <= WINDOW_SIZE);
            }
        }
    }

    #[test]
    fn long_range_matches_within_window() {
        // Repeat a block separated by filler larger than window: must still
        // roundtrip even though the match is out of reach.
        let mut data = b"unique-prefix-block".to_vec();
        data.extend(std::iter::repeat_n(0u8, WINDOW_SIZE + 100));
        data.extend_from_slice(b"unique-prefix-block");
        roundtrip(&data, Effort::DEFAULT);
    }

    #[test]
    fn expand_panics_on_bad_distance() {
        let result = std::panic::catch_unwind(|| {
            expand(&[Token::Match {
                length: 3,
                distance: 1,
            }])
        });
        assert!(result.is_err());
    }

    #[test]
    fn binary_header_like_data() {
        // 44-byte records with small variations — the TSH shape gzip sees.
        let mut data = Vec::new();
        for i in 0..500u32 {
            let mut rec = [0u8; 44];
            rec[0..4].copy_from_slice(&i.to_be_bytes());
            rec[8] = 0x45;
            rec[16] = 6;
            rec[20..24].copy_from_slice(&(0x0A00_0001u32 + i % 13).to_be_bytes());
            data.extend_from_slice(&rec);
        }
        let tokens = tokenize(&data, Effort::DEFAULT);
        assert_eq!(expand(&tokens), data);
        let matches = tokens
            .iter()
            .filter(|t| matches!(t, Token::Match { .. }))
            .count();
        assert!(matches > 100, "structured records should match heavily");
    }
}
