//! DEFLATE decoder (RFC 1951).

use crate::bitio::BitReader;
use crate::deflate::{
    fixed_dist_lengths, fixed_litlen_lengths, CL_ORDER, DIST_BASE, DIST_EXTRA, LENGTH_BASE,
    LENGTH_EXTRA,
};
use crate::huffman::Decoder;
use std::fmt;

/// Errors from a malformed DEFLATE stream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InflateError {
    /// Input ended before the final block completed.
    UnexpectedEof,
    /// Reserved block type 11.
    ReservedBlockType,
    /// Stored block LEN/NLEN mismatch.
    StoredLenMismatch,
    /// A Huffman code table was invalid.
    BadCodeTable(String),
    /// A decoded symbol was outside its alphabet.
    BadSymbol(u16),
    /// A back-reference pointed before the start of output.
    BadDistance {
        /// The offending distance.
        distance: usize,
        /// Output produced so far.
        have: usize,
    },
}

impl fmt::Display for InflateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InflateError::UnexpectedEof => write!(f, "unexpected end of deflate stream"),
            InflateError::ReservedBlockType => write!(f, "reserved block type"),
            InflateError::StoredLenMismatch => write!(f, "stored block length check failed"),
            InflateError::BadCodeTable(m) => write!(f, "bad huffman table: {m}"),
            InflateError::BadSymbol(s) => write!(f, "invalid symbol {s}"),
            InflateError::BadDistance { distance, have } => {
                write!(f, "distance {distance} exceeds produced output {have}")
            }
        }
    }
}

impl std::error::Error for InflateError {}

/// Decompresses a raw DEFLATE stream produced by
/// [`deflate_compress`](crate::deflate::deflate_compress) or any
/// RFC 1951-conforming encoder.
///
/// # Errors
///
/// Returns [`InflateError`] for truncated or malformed input.
pub fn inflate(data: &[u8]) -> Result<Vec<u8>, InflateError> {
    let mut r = BitReader::new(data);
    let mut out = Vec::with_capacity(data.len() * 3);
    loop {
        let bfinal = r.read_bit().map_err(|_| InflateError::UnexpectedEof)?;
        let btype = r.read_bits(2).map_err(|_| InflateError::UnexpectedEof)?;
        match btype {
            0b00 => inflate_stored(&mut r, &mut out)?,
            0b01 => {
                let lit = Decoder::from_lengths(&fixed_litlen_lengths())
                    .map_err(InflateError::BadCodeTable)?;
                let dist = Decoder::from_lengths(&fixed_dist_lengths())
                    .map_err(InflateError::BadCodeTable)?;
                inflate_coded(&mut r, &mut out, &lit, &dist)?;
            }
            0b10 => {
                let (lit, dist) = read_dynamic_tables(&mut r)?;
                inflate_coded(&mut r, &mut out, &lit, &dist)?;
            }
            _ => return Err(InflateError::ReservedBlockType),
        }
        if bfinal == 1 {
            return Ok(out);
        }
    }
}

fn inflate_stored(r: &mut BitReader<'_>, out: &mut Vec<u8>) -> Result<(), InflateError> {
    r.align_to_byte();
    let len_bytes = r.read_bytes(2).map_err(|_| InflateError::UnexpectedEof)?;
    let nlen_bytes = r.read_bytes(2).map_err(|_| InflateError::UnexpectedEof)?;
    let len = u16::from_le_bytes([len_bytes[0], len_bytes[1]]);
    let nlen = u16::from_le_bytes([nlen_bytes[0], nlen_bytes[1]]);
    if len != !nlen {
        return Err(InflateError::StoredLenMismatch);
    }
    let bytes = r
        .read_bytes(len as usize)
        .map_err(|_| InflateError::UnexpectedEof)?;
    out.extend_from_slice(&bytes);
    Ok(())
}

fn read_dynamic_tables(r: &mut BitReader<'_>) -> Result<(Decoder, Decoder), InflateError> {
    let hlit = r.read_bits(5).map_err(|_| InflateError::UnexpectedEof)? as usize + 257;
    let hdist = r.read_bits(5).map_err(|_| InflateError::UnexpectedEof)? as usize + 1;
    let hclen = r.read_bits(4).map_err(|_| InflateError::UnexpectedEof)? as usize + 4;

    let mut cl_lengths = [0u8; 19];
    for &sym in CL_ORDER.iter().take(hclen) {
        cl_lengths[sym] = r.read_bits(3).map_err(|_| InflateError::UnexpectedEof)? as u8;
    }
    let cl_dec = Decoder::from_lengths(&cl_lengths).map_err(InflateError::BadCodeTable)?;

    let total = hlit + hdist;
    let mut lengths = Vec::with_capacity(total);
    while lengths.len() < total {
        let sym = cl_dec
            .decode(|| r.read_bit().ok())
            .ok_or(InflateError::UnexpectedEof)?;
        match sym {
            0..=15 => lengths.push(sym as u8),
            16 => {
                let &prev = lengths.last().ok_or(InflateError::BadSymbol(16))?;
                let rep = 3 + r.read_bits(2).map_err(|_| InflateError::UnexpectedEof)?;
                for _ in 0..rep {
                    lengths.push(prev);
                }
            }
            17 => {
                let rep = 3 + r.read_bits(3).map_err(|_| InflateError::UnexpectedEof)?;
                lengths.resize(lengths.len() + rep as usize, 0);
            }
            18 => {
                let rep = 11 + r.read_bits(7).map_err(|_| InflateError::UnexpectedEof)?;
                lengths.resize(lengths.len() + rep as usize, 0);
            }
            s => return Err(InflateError::BadSymbol(s)),
        }
    }
    if lengths.len() != total {
        return Err(InflateError::BadCodeTable(format!(
            "code length overrun: {} vs {}",
            lengths.len(),
            total
        )));
    }
    let lit = Decoder::from_lengths(&lengths[..hlit]).map_err(InflateError::BadCodeTable)?;
    // A distance table of a single 1-bit code (possibly unused) is legal.
    let dist = Decoder::from_lengths(&lengths[hlit..]).map_err(InflateError::BadCodeTable)?;
    Ok((lit, dist))
}

fn inflate_coded(
    r: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    lit: &Decoder,
    dist: &Decoder,
) -> Result<(), InflateError> {
    loop {
        let sym = lit
            .decode(|| r.read_bit().ok())
            .ok_or(InflateError::UnexpectedEof)?;
        match sym {
            0..=255 => out.push(sym as u8),
            256 => return Ok(()),
            257..=285 => {
                let idx = (sym - 257) as usize;
                let extra = LENGTH_EXTRA[idx] as u32;
                let len = LENGTH_BASE[idx] as usize
                    + r.read_bits(extra)
                        .map_err(|_| InflateError::UnexpectedEof)? as usize;
                let dsym = dist
                    .decode(|| r.read_bit().ok())
                    .ok_or(InflateError::UnexpectedEof)?;
                if dsym as usize >= DIST_BASE.len() {
                    return Err(InflateError::BadSymbol(dsym));
                }
                let dextra = DIST_EXTRA[dsym as usize] as u32;
                let d = DIST_BASE[dsym as usize] as usize
                    + r.read_bits(dextra)
                        .map_err(|_| InflateError::UnexpectedEof)? as usize;
                if d == 0 || d > out.len() {
                    return Err(InflateError::BadDistance {
                        distance: d,
                        have: out.len(),
                    });
                }
                let start = out.len() - d;
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
            s => return Err(InflateError::BadSymbol(s)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflate::{deflate_compress, Level};

    #[test]
    fn inflate_known_fixed_block() {
        // A fixed-Huffman block containing "abc" produced by zlib:
        // 0x4b 0x4c 0x4a 0x06 0x00 — BFINAL=1, BTYPE=01, literals a b c, EOB.
        let stream = [0x4b, 0x4c, 0x4a, 0x06, 0x00];
        assert_eq!(inflate(&stream).unwrap(), b"abc");
    }

    #[test]
    fn inflate_known_stored_block() {
        // BFINAL=1 BTYPE=00 then LEN=3 NLEN=~3 "xyz"
        let stream = [0x01, 0x03, 0x00, 0xfc, 0xff, b'x', b'y', b'z'];
        assert_eq!(inflate(&stream).unwrap(), b"xyz");
    }

    #[test]
    fn stored_len_mismatch_rejected() {
        let stream = [0x01, 0x03, 0x00, 0x00, 0x00, b'x', b'y', b'z'];
        assert_eq!(inflate(&stream), Err(InflateError::StoredLenMismatch));
    }

    #[test]
    fn reserved_block_type_rejected() {
        // BFINAL=1 BTYPE=11
        let stream = [0b0000_0111];
        assert_eq!(inflate(&stream), Err(InflateError::ReservedBlockType));
    }

    #[test]
    fn empty_input_is_eof() {
        assert_eq!(inflate(&[]), Err(InflateError::UnexpectedEof));
    }

    #[test]
    fn truncated_stream_is_eof() {
        let z = deflate_compress(
            b"some reasonably long test data for truncation",
            Level::Default,
        );
        for cut in 1..z.len().min(8) {
            let r = inflate(&z[..z.len() - cut]);
            assert!(r.is_err(), "cut {cut} should fail");
        }
    }

    #[test]
    fn distance_before_start_rejected() {
        // Hand-build a fixed block: match with distance 1 before any literal.
        use crate::bitio::{reverse_bits, BitWriter};
        use crate::huffman::canonical_codes;
        let lens = crate::deflate::fixed_litlen_lengths();
        let codes = canonical_codes(&lens);
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0b01, 2);
        // length symbol 257 (len 3): 7-bit code
        w.write_bits(reverse_bits(codes[257], lens[257] as u32), lens[257] as u32);
        // distance symbol 0 (dist 1): fixed 5-bit code 0
        w.write_bits(0, 5);
        let stream = w.finish();
        match inflate(&stream) {
            Err(InflateError::BadDistance {
                distance: 1,
                have: 0,
            }) => {}
            other => panic!("expected BadDistance, got {other:?}"),
        }
    }

    #[test]
    fn error_display_nonempty() {
        let errs = [
            InflateError::UnexpectedEof,
            InflateError::ReservedBlockType,
            InflateError::StoredLenMismatch,
            InflateError::BadCodeTable("x".into()),
            InflateError::BadSymbol(300),
            InflateError::BadDistance {
                distance: 9,
                have: 1,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn multi_block_streams() {
        // Two blocks: non-final stored + final fixed.
        let mut stream = vec![0x00, 0x02, 0x00, 0xfd, 0xff, b'h', b'i'];
        stream.extend_from_slice(&[0x4b, 0x4c, 0x4a, 0x06, 0x00]); // final "abc"
        assert_eq!(inflate(&stream).unwrap(), b"hiabc");
    }
}
