//! LSB-first bit streams, as DEFLATE packs them (RFC 1951 §3.1.1).
//!
//! Data elements other than Huffman codes are written least-significant
//! bit first; Huffman codes are written most-significant bit first, which
//! callers achieve by reversing the code bits before calling
//! [`BitWriter::write_bits`].

/// Accumulates bits LSB-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    bit_buf: u64,
    bit_count: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Writes the low `count` bits of `bits`, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32` (DEFLATE never needs more).
    #[inline]
    pub fn write_bits(&mut self, bits: u32, count: u32) {
        assert!(count <= 32, "at most 32 bits per call");
        debug_assert!(count == 32 || bits < (1u32 << count), "bits exceed count");
        self.bit_buf |= (bits as u64) << self.bit_count;
        self.bit_count += count;
        while self.bit_count >= 8 {
            self.out.push((self.bit_buf & 0xff) as u8);
            self.bit_buf >>= 8;
            self.bit_count -= 8;
        }
    }

    /// Pads with zero bits to the next byte boundary (used before stored
    /// blocks and at stream end).
    pub fn align_to_byte(&mut self) {
        if self.bit_count > 0 {
            self.out.push((self.bit_buf & 0xff) as u8);
            self.bit_buf = 0;
            self.bit_count = 0;
        }
    }

    /// Appends whole bytes; the stream must be byte-aligned.
    ///
    /// # Panics
    ///
    /// Panics if called while un-flushed bits remain.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        assert_eq!(self.bit_count, 0, "write_bytes requires byte alignment");
        self.out.extend_from_slice(bytes);
    }

    /// Number of complete bytes emitted so far.
    pub fn byte_len(&self) -> usize {
        self.out.len()
    }

    /// Total bits written (including buffered ones).
    pub fn bit_len(&self) -> u64 {
        self.out.len() as u64 * 8 + self.bit_count as u64
    }

    /// Finishes the stream (zero-padding the final byte) and returns it.
    pub fn finish(mut self) -> Vec<u8> {
        self.align_to_byte();
        self.out
    }
}

/// Reads bits LSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    bit_buf: u64,
    bit_count: u32,
}

/// Error returned when a reader runs past the end of input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBits;

impl std::fmt::Display for OutOfBits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bit stream exhausted")
    }
}

impl std::error::Error for OutOfBits {}

impl<'a> BitReader<'a> {
    /// Wraps a byte slice.
    pub fn new(data: &'a [u8]) -> BitReader<'a> {
        BitReader {
            data,
            pos: 0,
            bit_buf: 0,
            bit_count: 0,
        }
    }

    #[inline]
    fn refill(&mut self) {
        while self.bit_count <= 56 && self.pos < self.data.len() {
            self.bit_buf |= (self.data[self.pos] as u64) << self.bit_count;
            self.pos += 1;
            self.bit_count += 8;
        }
    }

    /// Reads `count` bits (≤ 32), LSB first.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfBits`] when fewer than `count` bits remain.
    #[inline]
    pub fn read_bits(&mut self, count: u32) -> Result<u32, OutOfBits> {
        assert!(count <= 32);
        self.refill();
        if self.bit_count < count {
            return Err(OutOfBits);
        }
        let mask = if count == 32 {
            u32::MAX
        } else {
            (1u32 << count) - 1
        };
        let v = (self.bit_buf as u32) & mask;
        self.bit_buf >>= count;
        self.bit_count -= count;
        Ok(v)
    }

    /// Reads one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<u32, OutOfBits> {
        self.read_bits(1)
    }

    /// Discards buffered bits up to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        let drop = self.bit_count % 8;
        self.bit_buf >>= drop;
        self.bit_count -= drop;
    }

    /// Reads `n` whole bytes; the reader must be byte-aligned.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfBits`] when fewer than `n` bytes remain.
    ///
    /// # Panics
    ///
    /// Panics if the reader is not byte-aligned.
    pub fn read_bytes(&mut self, n: usize) -> Result<Vec<u8>, OutOfBits> {
        assert_eq!(self.bit_count % 8, 0, "read_bytes requires byte alignment");
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let b = self.read_bits(8)?;
            out.push(b as u8);
        }
        Ok(out)
    }

    /// Bits still available.
    pub fn remaining_bits(&self) -> u64 {
        (self.data.len() - self.pos) as u64 * 8 + self.bit_count as u64
    }
}

/// Reverses the low `len` bits of `code` — converts a canonical
/// (MSB-first) Huffman code into DEFLATE's LSB-first packing order.
#[inline]
pub fn reverse_bits(code: u32, len: u32) -> u32 {
    let mut c = code;
    let mut r = 0u32;
    for _ in 0..len {
        r = (r << 1) | (c & 1);
        c >>= 1;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xff, 8);
        w.write_bits(0, 1);
        w.write_bits(0b1100_1010_1111_0000, 16);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(8).unwrap(), 0xff);
        assert_eq!(r.read_bits(1).unwrap(), 0);
        assert_eq!(r.read_bits(16).unwrap(), 0b1100_1010_1111_0000);
    }

    #[test]
    fn lsb_first_packing() {
        let mut w = BitWriter::new();
        // RFC 1951: first bit goes to the least significant bit of byte 0.
        w.write_bits(1, 1);
        w.write_bits(0, 1);
        w.write_bits(1, 1);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b0000_0101]);
    }

    #[test]
    fn align_and_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.align_to_byte();
        w.write_bytes(&[0xAB, 0xCD]);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0x01, 0xAB, 0xCD]);

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bit().unwrap(), 1);
        r.align_to_byte();
        assert_eq!(r.read_bytes(2).unwrap(), vec![0xAB, 0xCD]);
        assert_eq!(r.remaining_bits(), 0);
    }

    #[test]
    fn out_of_bits_detected() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert_eq!(r.read_bits(1), Err(OutOfBits));
    }

    #[test]
    fn reverse_bits_cases() {
        assert_eq!(reverse_bits(0b1, 1), 0b1);
        assert_eq!(reverse_bits(0b100, 3), 0b001);
        assert_eq!(reverse_bits(0b1011, 4), 0b1101);
        assert_eq!(reverse_bits(0, 15), 0);
    }

    #[test]
    fn bit_len_accounting() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0b11, 2);
        assert_eq!(w.bit_len(), 2);
        w.write_bits(0x3f, 6);
        assert_eq!(w.bit_len(), 8);
        assert_eq!(w.byte_len(), 1);
    }

    #[test]
    fn long_stream_roundtrip() {
        let mut w = BitWriter::new();
        for i in 0..1000u32 {
            w.write_bits(i % 13, 4);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for i in 0..1000u32 {
            assert_eq!(r.read_bits(4).unwrap(), i % 13);
        }
    }
}
