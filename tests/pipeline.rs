//! End-to-end integration tests spanning the whole workspace: generate →
//! compress → serialize → decompress → replay, checking the properties
//! the paper claims at each boundary.

use flowzip::prelude::*;
use flowzip::trace::tsh;

fn web_trace(flows: usize, seed: u64) -> Trace {
    WebTrafficGenerator::new(
        WebTrafficConfig {
            flows,
            duration_secs: 30.0,
            ..WebTrafficConfig::default()
        },
        seed,
    )
    .generate()
}

#[test]
fn full_pipeline_preserves_flow_statistics() {
    let original = web_trace(500, 1);
    let (archive, report) = Compressor::new(Params::paper()).compress(&original);

    // Serialize through bytes (what would live on disk).
    let bytes = archive.to_bytes();
    let reloaded = CompressedTrace::from_bytes(&bytes).unwrap();
    let restored = Decompressor::default().decompress(&reloaded);

    assert_eq!(restored.len(), original.len(), "packet count preserved");
    let so = FlowTable::from_trace(&original).stats(50);
    let sd = FlowTable::from_trace(&restored).stats(50);
    assert_eq!(so.flows, sd.flows, "flow count preserved");
    assert!((so.short_flow_fraction() - sd.short_flow_fraction()).abs() < 0.02);
    assert!((so.mean_flow_len() - sd.mean_flow_len()).abs() < 0.5);

    // Flow-length distribution: KS over per-flow packet counts.
    let lens = |s: &FlowStats| {
        s.length_histogram
            .iter()
            .enumerate()
            .flat_map(|(n, &c)| std::iter::repeat_n(n as f64, c as usize))
            .collect::<Vec<f64>>()
    };
    let d = ks_distance(&lens(&so), &lens(&sd));
    assert!(d < 0.05, "flow-length distributions diverge: ks = {d}");

    // And it actually compressed: bytes on disk vs the TSH image.
    let ratio = bytes.len() as f64 / tsh::file_size(&original) as f64;
    assert!(ratio < 0.08, "on-disk ratio {ratio}");
    assert_eq!(report.packets, original.len() as u64);
}

#[test]
fn compression_ratio_ordering_matches_figure_1() {
    use flowzip::deflate::{gzip_compress, Level};
    use flowzip::peuhkuri::PeuhkuriCompressor;
    use flowzip::vj::comp::VjCompressor;

    let trace = web_trace(800, 2);
    let image = tsh::to_bytes(&trace);
    let original = image.len() as f64;

    let gzip = gzip_compress(&image, Level::Default).len() as f64 / original;
    let vj = VjCompressor::new().compress_trace(&trace).len() as f64 / original;
    let pk = PeuhkuriCompressor::new().compress_trace(&trace).len() as f64 / original;
    let (_, report) = Compressor::new(Params::paper()).compress(&trace);
    let fc = report.ratio_vs_tsh;

    // Figure 1's ordering: original > gzip > vj > peuhkuri > proposed.
    assert!(gzip < 1.0, "gzip {gzip}");
    assert!(vj < gzip, "vj {vj} vs gzip {gzip}");
    assert!(pk < vj, "peuhkuri {pk} vs vj {vj}");
    assert!(fc < pk, "proposed {fc} vs peuhkuri {pk}");
    // And the proposed method is in the paper's ballpark.
    assert!(fc < 0.06, "proposed ratio {fc} should be a few percent");
}

#[test]
fn decompressed_trace_drives_benchmarks_like_the_original() {
    use flowzip::netbench::route::RouteBench;

    let original = web_trace(400, 3);
    let (archive, _) = Compressor::new(Params::paper()).compress(&original);
    let decompressed = Decompressor::default().decompress(&archive);
    let random = randomize_destinations(&original, 44);

    let cfg = BenchConfig::default();
    let mut bench = RouteBench::covering_servers(&cfg, &original);
    let ro = bench.run(&original);
    let rd = bench.run(&decompressed);
    let rr = bench.run(&random);

    let acc = |r: &BenchReport| {
        r.costs
            .iter()
            .map(|c| c.accesses as f64)
            .collect::<Vec<_>>()
    };
    let ks_dec = ks_distance(&acc(&ro), &acc(&rd));
    let ks_rand = ks_distance(&acc(&ro), &acc(&rr));
    assert!(
        ks_dec < ks_rand,
        "decompressed (ks {ks_dec}) must track the original better than random (ks {ks_rand})"
    );

    // Figure 3's headline: the random trace shifts miss-rate mass upward.
    assert!(
        rr.mean_miss_rate() > rd.mean_miss_rate() * 1.5,
        "random {:.4} vs decompressed {:.4}",
        rr.mean_miss_rate(),
        rd.mean_miss_rate()
    );
    assert!(
        (ro.mean_miss_rate() - rd.mean_miss_rate()).abs() < 0.02,
        "original {:.4} vs decompressed {:.4}",
        ro.mean_miss_rate(),
        rd.mean_miss_rate()
    );
}

#[test]
fn tsh_round_trip_through_disk_format() {
    let trace = web_trace(100, 4);
    let bytes = tsh::to_bytes(&trace);
    assert_eq!(bytes.len() as u64, trace.len() as u64 * 44);
    let back = tsh::read_trace(&bytes[..]).unwrap();
    assert_eq!(back, trace);
}

#[test]
fn vj_round_trip_is_exact_on_generated_traffic() {
    use flowzip::vj::comp::{VjCompressor, VjDecompressor};
    let trace = web_trace(150, 5);
    let bytes = VjCompressor::new().compress_trace(&trace);
    let back = VjDecompressor::new().decompress_trace(&bytes).unwrap();
    assert_eq!(back, trace, "VJ is lossless down to every header field");
}

#[test]
fn peuhkuri_round_trip_preserves_its_contract() {
    use flowzip::peuhkuri::{decompress, PeuhkuriCompressor};
    let trace = web_trace(150, 6);
    let back = decompress(&PeuhkuriCompressor::new().compress_trace(&trace)).unwrap();
    assert_eq!(back.len(), trace.len());
    for (a, b) in trace.iter().zip(back.iter()) {
        assert_eq!(a.tuple(), b.tuple());
        assert_eq!(a.timestamp(), b.timestamp());
        assert_eq!(a.flags(), b.flags());
        assert_eq!(a.payload_len(), b.payload_len());
    }
}

#[test]
fn gzip_on_tsh_image_round_trips() {
    use flowzip::deflate::{gzip_compress, gzip_decompress, Level};
    let trace = web_trace(80, 7);
    let image = tsh::to_bytes(&trace);
    for level in [Level::Fast, Level::Default, Level::Best] {
        let z = gzip_compress(&image, level);
        assert_eq!(gzip_decompress(&z).unwrap(), image);
        assert!(z.len() < image.len(), "TSH images are compressible");
    }
}

#[test]
fn analytic_models_track_measured_ratios() {
    let trace = web_trace(1_000, 8);
    let stats = FlowTable::from_trace(&trace).stats(50);
    let pmf = stats.length_pmf();

    // VJ: model vs measured within a factor of 1.6 (the model is the
    // paper's lower bound; the implementation pays varint overhead).
    let vj_model = flowzip::vj::model::expected_ratio(&pmf);
    let vj_measured = flowzip::vj::comp::VjCompressor::new()
        .compress_trace(&trace)
        .len() as f64
        / tsh::file_size(&trace) as f64;
    assert!(
        vj_measured < vj_model * 1.8 && vj_measured > vj_model * 0.5,
        "vj model {vj_model:.3} vs measured {vj_measured:.3}"
    );

    // Proposed: Eq. (8) vs measured.
    let fc_model = flowzip::core::model::expected_ratio(&pmf);
    let (_, report) = Compressor::new(Params::paper()).compress(&trace);
    assert!(
        report.ratio_vs_tsh < fc_model * 3.0,
        "proposed model {fc_model:.4} vs measured {:.4}",
        report.ratio_vs_tsh
    );
}

#[test]
fn clustering_is_the_mechanism_not_an_accident() {
    // With clustering disabled (similarity 0 and unique-template flows),
    // the archive must grow; with the paper's threshold it shrinks.
    let trace = web_trace(600, 9);
    let strict = Compressor::new(Params {
        similarity: 0.0,
        ..Params::paper()
    });
    let paper = Compressor::new(Params::paper());
    let (_, rs) = strict.compress(&trace);
    let (_, rp) = paper.compress(&trace);
    assert!(rs.clusters >= rp.clusters);
    assert!(rs.sizes.total() >= rp.sizes.total());
    // Even exact-match-only clustering crushes Web traffic, because many
    // flows are *identical* (§2.1's observation).
    assert!(rs.clusters < rs.short_flows / 2);
}
