//! Cross-format integration tests: the same trace must survive TSH and
//! pcap serialization identically, and formats must interconvert.

use flowzip::prelude::*;
use flowzip::trace::{pcap, tsh};

fn web_trace(flows: usize, seed: u64) -> Trace {
    WebTrafficGenerator::new(
        WebTrafficConfig {
            flows,
            duration_secs: 15.0,
            ..WebTrafficConfig::default()
        },
        seed,
    )
    .generate()
}

#[test]
fn tsh_and_pcap_carry_identical_packets() {
    let trace = web_trace(150, 1);
    let via_tsh = tsh::read_trace(&tsh::to_bytes(&trace)[..]).unwrap();
    let via_pcap = pcap::read_trace(&pcap::to_bytes(&trace)[..]).unwrap();
    assert_eq!(via_tsh, trace);
    assert_eq!(via_pcap, trace);
}

#[test]
fn tsh_to_pcap_conversion_roundtrip() {
    // tsh bytes -> Trace -> pcap bytes -> Trace -> tsh bytes: first and
    // last TSH images must be identical.
    let trace = web_trace(100, 2);
    let tsh1 = tsh::to_bytes(&trace);
    let decoded = tsh::read_trace(&tsh1[..]).unwrap();
    let pcap_img = pcap::to_bytes(&decoded);
    let back = pcap::read_trace(&pcap_img[..]).unwrap();
    let tsh2 = tsh::to_bytes(&back);
    assert_eq!(tsh1, tsh2);
}

#[test]
fn format_sizes_relate_as_expected() {
    let trace = web_trace(100, 3);
    let tsh_len = tsh::file_size(&trace);
    let pcap_len = pcap::to_bytes(&trace).len() as u64;
    // pcap: 24-byte global header + 70 bytes/packet (16 + 54) vs TSH 44.
    assert_eq!(pcap_len, 24 + trace.len() as u64 * 70);
    assert!(pcap_len > tsh_len);
}

#[test]
fn compressed_archive_is_smaller_than_any_capture_format() {
    let trace = web_trace(400, 4);
    let (archive, _) = Compressor::new(Params::paper()).compress(&trace);
    let fzc = archive.to_bytes().len() as u64;
    assert!(fzc * 10 < tsh::file_size(&trace));
    assert!(fzc * 10 < pcap::to_bytes(&trace).len() as u64);
}

#[test]
fn archive_containers_interconvert_losslessly() {
    // v1 bytes → archive → v2 bytes → archive → v1 bytes: first and last
    // v1 images must be identical (the container never loses data).
    let trace = web_trace(250, 5);
    let (archive, _) = Compressor::new(Params::paper()).compress(&trace);
    let v1 = archive.to_bytes();
    let decoded = CompressedTrace::from_bytes(&v1).unwrap();
    let v2 = decoded.to_bytes_v2();
    let back = CompressedTrace::from_bytes(&v2).unwrap();
    assert_eq!(back.to_bytes(), v1);
}

#[test]
fn v2_container_overhead_is_near_constant() {
    // The section index and global datasets must not grow with the
    // trace: doubling the flows should grow the v2-over-v1 byte overhead
    // sublinearly (it is mostly identity-remap varints per template).
    let small = Compressor::new(Params::paper())
        .compress(&web_trace(200, 6))
        .0;
    let large = Compressor::new(Params::paper())
        .compress(&web_trace(800, 6))
        .0;
    let overhead =
        |ct: &CompressedTrace| ct.to_bytes_v2().len() as i64 - ct.to_bytes().len() as i64;
    let (o_small, o_large) = (overhead(&small), overhead(&large));
    assert!(o_small.abs() < 1_000, "small-trace overhead {o_small} B");
    assert!(o_large.abs() < 2_000, "large-trace overhead {o_large} B");
}
