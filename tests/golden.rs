//! Deterministic golden-fixture tests: the same seed must produce the
//! same archive bytes on every run, every build, every machine, and the
//! checked-in fixture pins today's wire format.
//!
//! If an intentional format or generator change invalidates the fixture,
//! regenerate it with:
//!
//! ```text
//! FLOWZIP_BLESS=1 cargo test --test golden
//! ```
//!
//! and commit the updated file alongside the change that required it.

use flowzip::prelude::*;
use std::path::PathBuf;

const GOLDEN_FLOWS: usize = 120;
const GOLDEN_SEED: u64 = 20050320;

fn golden_trace() -> Trace {
    WebTrafficGenerator::new(
        WebTrafficConfig {
            flows: GOLDEN_FLOWS,
            ..WebTrafficConfig::default()
        },
        GOLDEN_SEED,
    )
    .generate()
}

fn golden_archive_bytes() -> (Trace, Vec<u8>) {
    let trace = golden_trace();
    let (archive, _) = Compressor::new(Params::paper()).compress(&trace);
    let bytes = archive.to_bytes();
    (trace, bytes)
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/web120_seed20050320.fzc")
}

fn fixture_path_v2() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/web120_seed20050320.fzc2")
}

#[test]
fn archive_bytes_are_identical_across_runs() {
    let (_, first) = golden_archive_bytes();
    let (_, second) = golden_archive_bytes();
    assert_eq!(
        first, second,
        "generate → compress → to_bytes must be deterministic"
    );
}

// Trace generation samples lognormal/exponential distributions through
// libm transcendentals, whose last-ulp results vary between platform
// libm implementations — so exact byte-identity with the checked-in
// fixture is only promised on the platform that blesses it (and CI).
// Cross-run determinism on the *same* machine is asserted above for
// every platform.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
#[test]
fn archive_bytes_match_checked_in_fixture() {
    let (_, bytes) = golden_archive_bytes();
    let path = fixture_path();
    if std::env::var_os("FLOWZIP_BLESS").is_some() {
        std::fs::write(&path, &bytes).unwrap();
        return;
    }
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with FLOWZIP_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        bytes,
        golden,
        "archive bytes diverge from {}; if the change is intentional, re-bless the fixture",
        path.display()
    );
}

// Same platform caveat as the v1 fixture above.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
#[test]
fn v2_archive_bytes_match_checked_in_fixture() {
    let trace = golden_trace();
    let (archive, _) = Compressor::new(Params::paper()).compress(&trace);
    let bytes = archive.to_bytes_v2();
    let path = fixture_path_v2();
    if std::env::var_os("FLOWZIP_BLESS").is_some() {
        std::fs::write(&path, &bytes).unwrap();
        return;
    }
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with FLOWZIP_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        bytes,
        golden,
        "v2 archive bytes diverge from {}; if the change is intentional, re-bless the fixture",
        path.display()
    );
}

/// Cross-version read-back: the checked-in v1 and v2 fixtures hold the
/// same logical archive, decode to equal `CompressedTrace`s through the
/// same auto-detecting entry point, and decompress identically.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
#[test]
fn v1_and_v2_fixtures_decode_identically() {
    if std::env::var_os("FLOWZIP_BLESS").is_some() {
        return; // fixtures may be mid-rewrite
    }
    let v1 = std::fs::read(fixture_path()).unwrap();
    let v2 = std::fs::read(fixture_path_v2()).unwrap();
    let from_v1 = CompressedTrace::from_bytes(&v1).unwrap();
    let from_v2 = CompressedTrace::from_bytes(&v2).unwrap();
    assert_eq!(from_v1, from_v2, "one logical archive, two containers");
    assert_eq!(
        Decompressor::default().decompress(&from_v1),
        Decompressor::default().decompress(&from_v2),
        "packet-identical across container versions"
    );
}

#[test]
fn golden_round_trip_preserves_packet_count() {
    let (trace, bytes) = golden_archive_bytes();
    let reloaded = CompressedTrace::from_bytes(&bytes).unwrap();
    let restored = Decompressor::default().decompress(&reloaded);
    assert_eq!(restored.len(), trace.len(), "decompressed packet count");
    // Decompression is also deterministic for a fixed decompressor seed.
    let again = Decompressor::default().decompress(&reloaded);
    assert_eq!(restored, again, "decompression must be deterministic");
}
