//! Integration tests for the `flowzip` CLI binary: every subcommand, the
//! full generate → compress → decompress → synth file workflow, and error
//! handling.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_flowzip"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flowzip-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_file_workflow() {
    let dir = tmpdir("workflow");
    let tsh = dir.join("web.tsh");
    let fzc = dir.join("web.fzc");
    let restored = dir.join("restored.tsh");
    let scaled = dir.join("scaled.tsh");

    // generate
    let out = bin()
        .args(["generate", "--flows", "300", "--secs", "20", "--seed", "7", "-o"])
        .arg(&tsh)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let tsh_len = std::fs::metadata(&tsh).unwrap().len();
    assert!(tsh_len > 0);
    assert_eq!(tsh_len % 44, 0, "TSH files are 44-byte records");

    // stats
    let out = bin().arg("stats").arg(&tsh).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("300 flows"), "stats output: {text}");

    // compress
    let out = bin().arg("compress").arg(&tsh).arg("-o").arg(&fzc).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let fzc_len = std::fs::metadata(&fzc).unwrap().len();
    assert!(
        (fzc_len as f64) < tsh_len as f64 * 0.10,
        "archive {fzc_len} should be well under 10% of {tsh_len}"
    );

    // info
    let out = bin().arg("info").arg(&fzc).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("flows            : 300"), "info output: {text}");

    // decompress
    let out = bin()
        .arg("decompress")
        .arg(&fzc)
        .arg("-o")
        .arg(&restored)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(
        std::fs::metadata(&restored).unwrap().len(),
        tsh_len,
        "same packet count → same TSH size"
    );

    // synth: scale the archive up 3x
    let out = bin()
        .args(["synth"])
        .arg(&fzc)
        .args(["--flows", "900", "--seed", "5", "-o"])
        .arg(&scaled)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let scaled_len = std::fs::metadata(&scaled).unwrap().len();
    assert!(
        scaled_len > tsh_len * 2,
        "3x flows should yield roughly 3x packets ({scaled_len} vs {tsh_len})"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn no_command_fails_with_usage() {
    let out = bin().output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "stderr: {err}");
}

#[test]
fn unknown_command_fails() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn missing_output_flag_fails() {
    let out = bin().args(["generate", "--flows", "10"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing -o"));
}

#[test]
fn corrupt_archive_is_rejected() {
    let dir = tmpdir("corrupt");
    let bad = dir.join("bad.fzc");
    std::fs::write(&bad, b"not an archive at all").unwrap();
    let out = bin().arg("info").arg(&bad).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("parse"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_file_is_reported() {
    let out = bin().arg("stats").arg("/nonexistent/nope.tsh").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("open"));
}
