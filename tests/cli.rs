//! Integration tests for the `flowzip` CLI binary: every subcommand, the
//! full generate → compress → decompress → synth file workflow, and error
//! handling.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_flowzip"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flowzip-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_file_workflow() {
    let dir = tmpdir("workflow");
    let tsh = dir.join("web.tsh");
    let fzc = dir.join("web.fzc");
    let restored = dir.join("restored.tsh");
    let scaled = dir.join("scaled.tsh");

    // generate
    let out = bin()
        .args([
            "generate", "--flows", "300", "--secs", "20", "--seed", "7", "-o",
        ])
        .arg(&tsh)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let tsh_len = std::fs::metadata(&tsh).unwrap().len();
    assert!(tsh_len > 0);
    assert_eq!(tsh_len % 44, 0, "TSH files are 44-byte records");

    // stats
    let out = bin().arg("stats").arg(&tsh).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("300 flows"), "stats output: {text}");

    // compress
    let out = bin()
        .arg("compress")
        .arg(&tsh)
        .arg("-o")
        .arg(&fzc)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let fzc_len = std::fs::metadata(&fzc).unwrap().len();
    assert!(
        (fzc_len as f64) < tsh_len as f64 * 0.10,
        "archive {fzc_len} should be well under 10% of {tsh_len}"
    );

    // info
    let out = bin().arg("info").arg(&fzc).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("flows            : 300"),
        "info output: {text}"
    );

    // decompress
    let out = bin()
        .arg("decompress")
        .arg(&fzc)
        .arg("-o")
        .arg(&restored)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::metadata(&restored).unwrap().len(),
        tsh_len,
        "same packet count → same TSH size"
    );

    // synth: scale the archive up 3x
    let out = bin()
        .args(["synth"])
        .arg(&fzc)
        .args(["--flows", "900", "--seed", "5", "-o"])
        .arg(&scaled)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let scaled_len = std::fs::metadata(&scaled).unwrap().len();
    assert!(
        scaled_len > tsh_len * 2,
        "3x flows should yield roughly 3x packets ({scaled_len} vs {tsh_len})"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn no_command_fails_with_usage() {
    let out = bin().output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "stderr: {err}");
}

#[test]
fn unknown_command_fails() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn missing_output_flag_fails() {
    let out = bin().args(["generate", "--flows", "10"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing -o"));
}

#[test]
fn corrupt_archive_is_rejected() {
    let dir = tmpdir("corrupt");
    let bad = dir.join("bad.fzc");
    std::fs::write(&bad, b"not an archive at all").unwrap();
    let out = bin().arg("info").arg(&bad).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("parse"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_file_is_reported() {
    let out = bin()
        .arg("stats")
        .arg("/nonexistent/nope.tsh")
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("open"));
}

/// `--format` selects the container; both formats decompress to the
/// identical TSH output, and `info` reports the layout.
#[test]
fn format_flag_selects_container_and_output_is_identical() {
    let dir = tmpdir("format");
    let tsh = dir.join("web.tsh");
    let out = bin()
        .args([
            "generate", "--flows", "150", "--secs", "15", "--seed", "9", "-o",
        ])
        .arg(&tsh)
        .output()
        .unwrap();
    assert!(out.status.success());

    let mut restored = Vec::new();
    for format in ["v1", "v2"] {
        let fzc = dir.join(format!("web-{format}.fzc"));
        let out = bin()
            .arg("compress")
            .arg(&tsh)
            .args(["--format", format, "--streaming", "--threads", "3", "-o"])
            .arg(&fzc)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            String::from_utf8_lossy(&out.stdout).contains(&format!("{format} container")),
            "compress should announce the container"
        );

        let out = bin().arg("info").arg(&fzc).output().unwrap();
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        assert!(
            text.contains(&format!("format           : {format}")),
            "info: {text}"
        );
        if format == "v2" {
            assert!(
                text.contains("3 sections"),
                "v2 info shows sections: {text}"
            );
        }

        let back = dir.join(format!("restored-{format}.tsh"));
        let out = bin()
            .arg("decompress")
            .arg(&fzc)
            .arg("-o")
            .arg(&back)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        restored.push(std::fs::read(&back).unwrap());
    }
    assert_eq!(
        restored[0], restored[1],
        "v1 and v2 decompress packet-identically"
    );

    let out = bin()
        .arg("compress")
        .arg(&tsh)
        .args(["--format", "v9", "-o"])
        .arg(dir.join("bad.fzc"))
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown archive format"));
    std::fs::remove_dir_all(&dir).ok();
}

/// Multiple compress inputs stream as one ordered trace through parallel
/// readers — and the archive is byte-identical to compressing the
/// unsplit file, whatever the reader count. A quoted glob does the same.
#[test]
fn multi_file_compress_matches_single_file_archive() {
    let dir = tmpdir("multifile");
    let whole = dir.join("whole.tsh");
    let out = bin()
        .args([
            "generate", "--flows", "200", "--secs", "20", "--seed", "13", "-o",
        ])
        .arg(&whole)
        .output()
        .unwrap();
    assert!(out.status.success());

    // Split on record boundaries into three chunks.
    let bytes = std::fs::read(&whole).unwrap();
    let records = bytes.len() / 44;
    let cut1 = records / 3 * 44;
    let cut2 = records * 2 / 3 * 44;
    let chunks = [
        (dir.join("chunk-00.tsh"), &bytes[..cut1]),
        (dir.join("chunk-01.tsh"), &bytes[cut1..cut2]),
        (dir.join("chunk-02.tsh"), &bytes[cut2..]),
    ];
    for (path, slice) in &chunks {
        std::fs::write(path, slice).unwrap();
    }

    // Reference: the unsplit file through the plain streaming path.
    let ref_fzc = dir.join("ref.fzc");
    let out = bin()
        .arg("compress")
        .arg(&whole)
        .args(["--streaming", "--threads", "2", "-o"])
        .arg(&ref_fzc)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Explicit list.
    let list_fzc = dir.join("list.fzc");
    let out = bin()
        .arg("compress")
        .args(chunks.iter().map(|(p, _)| p.clone()))
        .args(["--threads", "2", "--readers", "3", "-o"])
        .arg(&list_fzc)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("read-wait"),
        "streaming output reports the read-wait/compute split: {text}"
    );

    // Quoted glob (the CLI expands it, sorted).
    let glob_fzc = dir.join("glob.fzc");
    let out = bin()
        .arg("compress")
        .arg(dir.join("chunk-*.tsh"))
        .args(["--threads", "2", "--readers", "2", "-o"])
        .arg(&glob_fzc)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let want = std::fs::read(&ref_fzc).unwrap();
    assert_eq!(std::fs::read(&list_fzc).unwrap(), want);
    assert_eq!(std::fs::read(&glob_fzc).unwrap(), want);

    // --prefetch-mb on the unsplit file: still byte-identical.
    let pf_fzc = dir.join("prefetch.fzc");
    let out = bin()
        .arg("compress")
        .arg(&whole)
        .args(["--threads", "2", "--prefetch-mb", "1", "-o"])
        .arg(&pf_fzc)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(std::fs::read(&pf_fzc).unwrap(), want);

    std::fs::remove_dir_all(&dir).ok();
}

/// Mixing pcap and TSH files in one compress invocation is rejected with
/// a message naming both offenders.
#[test]
fn mixed_format_inputs_are_rejected() {
    use flowzip::prelude::*;
    use flowzip::trace::{pcap, tsh};

    let dir = tmpdir("mixedcli");
    let trace = WebTrafficGenerator::new(
        WebTrafficConfig {
            flows: 20,
            ..WebTrafficConfig::default()
        },
        3,
    )
    .generate();
    std::fs::write(dir.join("a.tsh"), tsh::to_bytes(&trace)).unwrap();
    std::fs::write(dir.join("b.pcap"), pcap::to_bytes(&trace)).unwrap();
    let out = bin()
        .arg("compress")
        .arg(dir.join("a.tsh"))
        .arg(dir.join("b.pcap"))
        .arg("-o")
        .arg(dir.join("out.fzc"))
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("mixed capture formats"));
    std::fs::remove_dir_all(&dir).ok();
}

/// `info --json` and `compress --json` emit machine-readable reports.
#[test]
fn json_output_modes() {
    let dir = tmpdir("json");
    let tsh = dir.join("web.tsh");
    let fzc = dir.join("web.fzc");
    let out = bin()
        .args([
            "generate", "--flows", "80", "--secs", "10", "--seed", "21", "-o",
        ])
        .arg(&tsh)
        .output()
        .unwrap();
    assert!(out.status.success());

    let out = bin()
        .arg("compress")
        .arg(&tsh)
        .args(["--streaming", "--threads", "2", "--json", "-o"])
        .arg(&fzc)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in ["\"read_wait_secs\"", "\"compute_secs\"", "\"packets\": "] {
        assert!(text.contains(needle), "compress --json: {text}");
    }

    let out = bin().arg("info").arg(&fzc).arg("--json").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "\"mode\": \"info\"",
        "\"format\": \"v2\"",
        "\"sections\": 2",
        "\"flows\": 80",
        "\"dataset_bytes\"",
    ] {
        assert!(text.contains(needle), "info --json: {text}");
    }

    // decompress --json speaks the same unified schema (the satellite
    // parity requirement): one JSON object on stdout, notice on stderr.
    let restored = dir.join("restored.tsh");
    let out = bin()
        .arg("decompress")
        .arg(&fzc)
        .args(["--json", "-o"])
        .arg(&restored)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "\"mode\": \"decompress\"",
        "\"packets\": ",
        "\"flows\": 80",
        "\"format\": \"v2\"",
        "\"elapsed_secs\": ",
        "\"output_bytes\": ",
    ] {
        assert!(text.contains(needle), "decompress --json: {text}");
    }
    assert!(
        text.trim_start().starts_with('{') && text.trim_end().ends_with('}'),
        "stdout is exactly one JSON object: {text}"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("wrote"),
        "human notice moves to stderr under --json"
    );
    assert!(std::fs::metadata(&restored).unwrap().len() > 0);

    // --json on a bare single-file compress (the batch route) speaks the
    // schema too — no streaming flag needed.
    let batch_fzc = dir.join("batch.fzc");
    let out = bin()
        .arg("compress")
        .arg(&tsh)
        .args(["--json", "-o"])
        .arg(&batch_fzc)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "\"mode\": \"compress\"",
        "\"ratio_vs_tsh\": ",
        "\"read_wait_secs\": ",
        "\"clusters\": ",
    ] {
        assert!(text.contains(needle), "batch compress --json: {text}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// `--idle-timeout 0` / `--prefetch-mb 0` disable the feature but still
/// select the streaming route (their historical semantics) — a huge
/// capture compressed with an explicit 0 must not silently fall back to
/// whole-file batch loading.
#[test]
fn zero_valued_engine_flags_still_stream() {
    let dir = tmpdir("zeroflags");
    let tsh = dir.join("web.tsh");
    let out = bin()
        .args([
            "generate", "--flows", "60", "--secs", "10", "--seed", "3", "-o",
        ])
        .arg(&tsh)
        .output()
        .unwrap();
    assert!(out.status.success());

    for flag in [["--idle-timeout", "0"], ["--prefetch-mb", "0"]] {
        let fzc = dir.join("out.fzc");
        let out = bin()
            .arg("compress")
            .arg(&tsh)
            .args(flag)
            .arg("-o")
            .arg(&fzc)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(
            text.contains("shards"),
            "{flag:?} should select the streaming engine: {text}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The acceptance pin for the CLI rewrite: the binary is a shell over
/// the `Pipeline` session API and never calls the engine's compress
/// entry points directly.
#[test]
fn cli_source_has_no_direct_engine_compress_calls() {
    let src = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/src/bin/flowzip.rs"))
        .unwrap();
    for needle in [
        "compress_stream",
        "compress_source",
        "compress_trace",
        "compress_packets",
    ] {
        assert!(
            !src.contains(needle),
            "src/bin/flowzip.rs still calls `{needle}` — route it through Pipeline instead"
        );
    }
    assert!(
        !src.contains("StreamingEngine"),
        "src/bin/flowzip.rs should not construct engines directly"
    );
    assert!(
        src.contains("Pipeline::compress") && src.contains("Pipeline::decompress"),
        "the CLI fronts the Pipeline session API"
    );
}

/// The observability acceptance pins: `--stats-interval` emits at least
/// one valid JSON-lines snapshot to stderr (even when the run is
/// shorter than the interval), `--metrics --json` embeds the final
/// registry dump, `--profile` writes chrome://tracing trace-event JSON,
/// and `--quiet` silences the stderr chatter.
#[test]
fn observability_flags() {
    use flowzip::obs::json::is_valid_json;

    let dir = tmpdir("obsflags");
    let tsh = dir.join("web.tsh");
    let out = bin()
        .args([
            "generate", "--flows", "200", "--secs", "20", "--seed", "17", "-o",
        ])
        .arg(&tsh)
        .output()
        .unwrap();
    assert!(out.status.success());

    // --stats-interval 1 on a sub-second run: the stop-time snapshot
    // still lands, as one JSON object per line on stderr.
    let fzc = dir.join("stats.fzc");
    let out = bin()
        .arg("compress")
        .arg(&tsh)
        .args([
            "--threads",
            "2",
            "--idle-timeout",
            "60",
            "--stats-interval",
            "1",
            "-o",
        ])
        .arg(&fzc)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    let stats: Vec<&str> = err
        .lines()
        .filter(|l| l.starts_with(r#"{"type":"flowzip.stats""#))
        .collect();
    assert!(!stats.is_empty(), "no stats lines on stderr: {err}");
    for line in &stats {
        assert!(is_valid_json(line), "{line}");
        for key in [
            r#""packets_per_sec":"#,
            r#""active_flows":"#,
            r#""evicted_flows":"#,
            r#""queue_depth":["#,
        ] {
            assert!(line.contains(key), "missing {key}: {line}");
        }
    }

    // --metrics --json embeds the final registry dump in the report.
    let out = bin()
        .arg("compress")
        .arg(&tsh)
        .args(["--threads", "2", "--metrics", "--json", "-o"])
        .arg(dir.join("metrics.fzc"))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "\"metrics\": {\"counters\":{",
        "\"engine.packets\":",
        "\"stage_busy_secs\": ",
        "\"unattributed_secs\": ",
    ] {
        assert!(text.contains(needle), "--metrics --json: {text}");
    }

    // --profile writes a trace-event file chrome://tracing accepts:
    // a JSON object with a traceEvents array of complete ("X") spans.
    let trace_json = dir.join("trace.json");
    let out = bin()
        .arg("compress")
        .arg(&tsh)
        .args(["--threads", "2", "--profile"])
        .arg(&trace_json)
        .arg("-o")
        .arg(dir.join("prof.fzc"))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let profile = std::fs::read_to_string(&trace_json).unwrap();
    assert!(is_valid_json(&profile), "{profile}");
    assert!(profile.contains("\"traceEvents\""), "{profile}");
    assert!(profile.contains("\"ph\":\"X\""), "{profile}");

    // --quiet silences the json-mode notice but not the report.
    let out = bin()
        .arg("compress")
        .arg(&tsh)
        .args(["--json", "--quiet", "-o"])
        .arg(dir.join("quiet.fzc"))
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"mode\": \"compress\""));
    assert!(
        !String::from_utf8_lossy(&out.stderr).contains("wrote"),
        "--quiet suppresses the notice"
    );

    // Contradictory levels are rejected.
    let out = bin()
        .arg("compress")
        .arg(&tsh)
        .args(["-q", "-v", "-o"])
        .arg(dir.join("never.fzc"))
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("contradict"));

    std::fs::remove_dir_all(&dir).ok();
}

/// pcap input is auto-detected and streamed through `PcapReader` — the
/// archive matches what the same packets compress to from TSH.
#[test]
fn pcap_input_is_auto_detected() {
    use flowzip::prelude::*;
    use flowzip::trace::pcap;

    let dir = tmpdir("pcap");
    let trace = WebTrafficGenerator::new(
        WebTrafficConfig {
            flows: 120,
            duration_secs: 15.0,
            ..WebTrafficConfig::default()
        },
        11,
    )
    .generate();
    let pcap_path = dir.join("web.pcap");
    std::fs::write(&pcap_path, pcap::to_bytes(&trace)).unwrap();
    let tsh_path = dir.join("web.tsh");
    std::fs::write(&tsh_path, flowzip::trace::tsh::to_bytes(&trace)).unwrap();

    for (input, tag) in [(&pcap_path, "pcap"), (&tsh_path, "tsh")] {
        for streaming in [true, false] {
            let fzc = dir.join(format!("{tag}-{streaming}.fzc"));
            let mut cmd = bin();
            cmd.arg("compress").arg(input);
            if streaming {
                cmd.args(["--streaming", "--threads", "2"]);
            }
            let out = cmd.arg("-o").arg(&fzc).output().unwrap();
            assert!(
                out.status.success(),
                "{tag} streaming={streaming}: {}",
                String::from_utf8_lossy(&out.stderr)
            );
        }
    }
    // Same packets, same pipeline → same archive regardless of capture format.
    assert_eq!(
        std::fs::read(dir.join("pcap-true.fzc")).unwrap(),
        std::fs::read(dir.join("tsh-true.fzc")).unwrap()
    );
    assert_eq!(
        std::fs::read(dir.join("pcap-false.fzc")).unwrap(),
        std::fs::read(dir.join("tsh-false.fzc")).unwrap()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn query_subcommand_prunes_and_matches_full_decode() {
    let dir = tmpdir("query");
    let tsh = dir.join("web.tsh");
    let fzc = dir.join("web.fzc");
    let hit = dir.join("hit.tsh");

    let out = bin()
        .args([
            "generate", "--flows", "250", "--secs", "30", "--seed", "11", "-o",
        ])
        .arg(&tsh)
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = bin()
        .arg("compress")
        .arg(&tsh)
        .args(["--streaming", "--threads", "4", "-o"])
        .arg(&fzc)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // `info` names the revision: sections carry the v2.1 metadata block.
    let out = bin().arg("info").arg(&fzc).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("v2.1 (4 sections, per-section metadata)"),
        "{text}"
    );

    // Pick a real conversation out of the archive via the library, then
    // ask the CLI for exactly that flow.
    let bytes = std::fs::read(&fzc).unwrap();
    let full = flowzip::core::Decompressor::new(flowzip::core::DecompressParams::default())
        .decompress(&flowzip::core::CompressedTrace::from_bytes(&bytes).unwrap());
    let target = full.packets()[0].tuple();
    let spec = format!(
        "{}:{}->{}:{}",
        target.src_ip, target.src_port, target.dst_ip, target.dst_port
    );
    let out = bin()
        .arg("query")
        .arg(&fzc)
        .args(["--flow", &spec, "--json", "-o"])
        .arg(&hit)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "\"mode\": \"query\"",
        "\"sections_total\": 4",
        "\"has_metadata\": true",
        "\"sections_scanned\"",
    ] {
        assert!(text.contains(needle), "query --json: {text}");
    }

    // The written trace is byte-identical to filtering a full decode.
    let expected: Vec<_> = full
        .packets()
        .iter()
        .filter(|p| p.tuple().same_conversation(&target))
        .cloned()
        .collect();
    assert!(!expected.is_empty());
    let expected_tsh =
        flowzip::trace::tsh::to_bytes(&flowzip::trace::Trace::from_packets(expected));
    assert_eq!(std::fs::read(&hit).unwrap(), expected_tsh);

    // Report-only mode (no -o) and human output both work.
    let out = bin()
        .arg("query")
        .arg(&fzc)
        .args(["--from", "0", "--to", "5"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("sections"), "human query output: {text}");

    // A bad flow spec is a usage error, not a panic.
    let out = bin()
        .arg("query")
        .arg(&fzc)
        .args(["--flow", "nonsense"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}
