//! End-to-end tests for queryable archives: the v2.1 metadata block must
//! make `flowzip query` decode *strictly fewer* sections than a full
//! decompression while returning byte-identical packets — and a Bloom
//! false positive must never change a result, only cost an extra
//! section decode.

use flowzip::core::{query_bytes, CompressedTrace, DecompressParams, Decompressor, FlowQuery};
use flowzip::pipeline::{Input, Pipeline, Sink};
use flowzip::trace::{tsh, FiveTuple, Trace};
use flowzip::traffic::web::{WebTrafficConfig, WebTrafficGenerator};
use proptest::prelude::*;

/// A multi-section v2.1 archive built through the public pipeline, the
/// same way `flowzip compress --streaming --threads N` builds one.
fn sectioned_archive(flows: usize, seed: u64, shards: usize) -> Vec<u8> {
    let trace = WebTrafficGenerator::new(
        WebTrafficConfig {
            flows,
            ..WebTrafficConfig::default()
        },
        seed,
    )
    .generate();
    Pipeline::compress()
        .input(Input::trace(&trace))
        .sink(Sink::bytes())
        .streaming(true)
        .threads(shards)
        .run()
        .unwrap()
        .into_bytes()
        .unwrap()
}

fn full_decode(bytes: &[u8]) -> Trace {
    Decompressor::new(DecompressParams::default())
        .decompress(&CompressedTrace::from_bytes(bytes).unwrap())
}

fn filtered(full: &Trace, target: &FiveTuple) -> Trace {
    Trace::from_packets(
        full.packets()
            .iter()
            .filter(|p| p.tuple().same_conversation(target))
            .cloned()
            .collect(),
    )
}

/// The ISSUE's acceptance criterion, verbatim: on a multi-section
/// archive a flow query decodes strictly fewer sections than full
/// decompression AND returns byte-identical packets to filtering a full
/// decode.
#[test]
fn query_decodes_strictly_fewer_sections_and_identical_packets() {
    let bytes = sectioned_archive(500, 42, 6);
    let full = full_decode(&bytes);

    // Every flow lives in exactly one section, so across a handful of
    // distinct conversations pruning must kick in every time metadata
    // rules the other sections out — require it for the majority, and
    // require byte-identity for all.
    let mut keys: Vec<FiveTuple> = Vec::new();
    for p in full.packets() {
        if keys.len() == 12 {
            break;
        }
        if !keys.iter().any(|k| k.same_conversation(&p.tuple())) {
            keys.push(p.tuple());
        }
    }
    assert_eq!(keys.len(), 12);

    let mut pruned = 0;
    for target in &keys {
        let query = FlowQuery {
            flow: Some(*target),
            ..FlowQuery::default()
        };
        let out = query_bytes(&bytes, &query, &DecompressParams::default()).unwrap();
        assert!(out.stats.has_metadata);
        assert_eq!(out.stats.sections_total, 6);
        if out.stats.sections_scanned < out.stats.sections_total {
            pruned += 1;
        }
        assert_eq!(
            tsh::to_bytes(&out.trace),
            tsh::to_bytes(&filtered(&full, target)),
            "query for {target:?} must be byte-identical to filter-after-full-decode"
        );
    }
    assert!(pruned >= 6, "only {pruned}/12 queries pruned any section");
}

/// The pipeline session reports the same pruning the core planner did,
/// and its sink output is the same bytes.
#[test]
fn pipeline_query_session_matches_core_planner() {
    let bytes = sectioned_archive(300, 7, 4);
    let full = full_decode(&bytes);
    let target = full.packets()[0].tuple();

    let result = Pipeline::query()
        .input(Input::bytes(bytes.clone()))
        .sink(Sink::bytes())
        .flow(target)
        .run()
        .unwrap();
    let stats = result.report.query.unwrap();

    let query = FlowQuery {
        flow: Some(target),
        ..FlowQuery::default()
    };
    let core = query_bytes(&bytes, &query, &DecompressParams::default()).unwrap();
    assert_eq!(stats, core.stats);
    assert_eq!(result.into_bytes().unwrap(), tsh::to_bytes(&core.trace));
}

proptest! {
    // `PROPTEST_CASES` (64 in CI) overrides this baseline.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Bloom-filter false positives must be invisible in results:
    /// querying arbitrary tuples (present in the archive or not) always
    /// equals filtering a full decode. A false positive only means a
    /// section is scanned and contributes zero matches.
    #[test]
    fn bloom_false_positives_never_change_results(
        a in 1u8..=223, b in any::<u8>(), c in any::<u8>(), d in 1u8..=254,
        sport in 1024u16..=65000, dport in prop_oneof![Just(80u16), 1u16..=65000],
        seed in 0u64..=3,
    ) {
        let bytes = sectioned_archive(120, seed, 4);
        let full = full_decode(&bytes);
        let target = FiveTuple::tcp(
            std::net::Ipv4Addr::new(a, b, c, d), sport,
            std::net::Ipv4Addr::new(d, c, b, a), dport,
        );
        let query = FlowQuery { flow: Some(target), ..FlowQuery::default() };
        let out = query_bytes(&bytes, &query, &DecompressParams::default()).unwrap();
        prop_assert_eq!(
            tsh::to_bytes(&out.trace),
            tsh::to_bytes(&filtered(&full, &target))
        );
        // Stats stay consistent whether or not the Bloom probe lied.
        prop_assert_eq!(
            out.stats.sections_total,
            out.stats.sections_scanned + out.stats.sections_skipped()
        );
    }
}
