//! Workspace wiring smoke test: every facade re-export module must be
//! reachable under its documented name, and the paper's constants must
//! survive refactors.

use flowzip::prelude::*;

#[test]
fn every_facade_module_is_reachable() {
    // One cheap, observable touch per re-exported crate, through the
    // `flowzip::<module>` path the docs advertise.
    assert!(flowzip::trace::TcpFlags::SYN.contains(flowzip::trace::TcpFlags::SYN));
    assert!(flowzip::traffic::WebTrafficConfig::default().flows > 0);
    assert_eq!(flowzip::core::Params::paper().short_max, 50);
    assert!(
        flowzip::engine::StreamingEngine::builder()
            .build()
            .config()
            .shards
            >= 1
    );
    assert_eq!(flowzip::deflate::ratio(50, 100), 0.5);
    assert!(flowzip::vj::model::ratio_for_flow_len(1) > 0.0);
    assert_eq!(&flowzip::peuhkuri::MAGIC, b"PKT1");
    assert!(flowzip::radix::RadixTable::<u32>::new().is_empty());
    assert!(flowzip::cachesim::CacheConfig::netbench_l1()
        .validate()
        .is_ok());
    assert_eq!(
        flowzip::netbench::BenchKind::Route,
        flowzip::netbench::BenchKind::Route
    );
    assert_eq!(flowzip::analysis::ks_distance(&[1.0], &[1.0]), 0.0);
}

#[test]
fn prelude_pulls_in_the_whole_pipeline_vocabulary() {
    // Names, not values: this fails to compile if the prelude loses a
    // re-export the examples and tests rely on.
    let _generate: fn(WebTrafficConfig, u64) -> WebTrafficGenerator = WebTrafficGenerator::new;
    let _compress: fn(Params) -> Compressor = Compressor::new;
    let _decompress: fn() -> Decompressor = Decompressor::default;
    let _engine: fn() -> EngineBuilder = StreamingEngine::builder;
    let _table: fn(&Trace) -> FlowTable = FlowTable::from_trace;
    let _ks: fn(&[f64], &[f64]) -> f64 = ks_distance;
    let _cache: fn(CacheConfig) -> Cache = Cache::new;
    let _ = BenchKind::Route;
    let _ = TcpFlags::SYN | TcpFlags::ACK;
}

#[test]
fn params_paper_matches_the_papers_constants() {
    use flowzip::core::{DistanceMetric, Params, Weights};

    let p = Params::paper();
    // §2: M(p) = 16·f1 + 4·f2 + 1·f3.
    assert_eq!(
        p.weights,
        Weights {
            flags: 16,
            dependence: 4,
            size: 1
        }
    );
    // §2: payload classes split at 500 bytes.
    assert_eq!(p.size_edge, 500);
    // §3: short flows are 2–50 packets.
    assert_eq!(p.short_max, 50);
    // Eq. (4): d_sim = 2% · (n · 50) — exactly n with paper constants.
    assert_eq!(p.per_packet_bound, 50);
    assert!((p.similarity - 0.02).abs() < 1e-12);
    assert!((p.d_sim(37) - 37.0).abs() < 1e-9);
    assert_eq!(p.metric, DistanceMetric::L1);
    // And `Default` must stay in sync with `paper()`.
    assert_eq!(Params::default(), p);
}

#[test]
fn compressed_trace_serialization_api_is_stable() {
    use flowzip::core::CompressedTrace;

    let trace = WebTrafficGenerator::new(
        WebTrafficConfig {
            flows: 40,
            ..WebTrafficConfig::default()
        },
        11,
    )
    .generate();
    let (archive, _) = Compressor::new(Params::paper()).compress(&trace);
    let bytes = archive.to_bytes();
    let reloaded = CompressedTrace::from_bytes(&bytes).unwrap();
    assert_eq!(reloaded.packet_count(), archive.packet_count());
    assert_eq!(
        reloaded.to_bytes(),
        bytes,
        "serialization must be canonical"
    );
}
